package evt

import (
	"math"
	"math/rand"
	"testing"
)

func TestDSPOTHandlesDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Calibration: flat noise.
	init := make([]float64, 2000)
	for i := range init {
		init[i] = rng.NormFloat64() * 0.3
	}
	d := NewDSPOT(0.99, 1e-3, 50)
	if err := d.Fit(init); err != nil {
		t.Fatalf("fit: %v", err)
	}
	// Slow linear drift: plain SPOT would alarm constantly once the level
	// exceeds the calibrated tail; DSPOT must stay quiet.
	alarms := 0
	level := 0.0
	for i := 0; i < 3000; i++ {
		level += 0.005 // total drift = 15, far above the initial tail
		if fired, _ := d.Step(level + rng.NormFloat64()*0.3); fired {
			alarms++
		}
	}
	if alarms > 30 {
		t.Fatalf("DSPOT alarmed %d times on pure drift", alarms)
	}
	// A genuine spike on top of the drifted level must still fire.
	if fired, _ := d.Step(level + 10); !fired {
		t.Fatal("DSPOT missed a spike above the drifted baseline")
	}
}

func TestDSPOTVsSPOTOnDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	init := make([]float64, 1500)
	for i := range init {
		init[i] = rng.NormFloat64() * 0.3
	}
	s := NewSPOT(0.99, 1e-3)
	if err := s.Fit(init); err != nil {
		t.Fatal(err)
	}
	d := NewDSPOT(0.99, 1e-3, 50)
	if err := d.Fit(init); err != nil {
		t.Fatal(err)
	}
	spotAlarms, dspotAlarms := 0, 0
	level := 0.0
	for i := 0; i < 2000; i++ {
		level += 0.01
		x := level + rng.NormFloat64()*0.3
		if x > s.Threshold() {
			spotAlarms++
		}
		if fired, _ := d.Step(x); fired {
			dspotAlarms++
		}
	}
	if dspotAlarms >= spotAlarms {
		t.Fatalf("drift correction should reduce alarms: SPOT %d, DSPOT %d", spotAlarms, dspotAlarms)
	}
}

func TestDSPOTFitTooShort(t *testing.T) {
	if err := NewDSPOT(0.99, 1e-3, 50).Fit(make([]float64, 30)); err == nil {
		t.Fatal("expected error for too-short calibration")
	}
}

func TestDSPOTTrailingMean(t *testing.T) {
	d := NewDSPOT(0.99, 1e-3, 4)
	for _, v := range []float64{1, 2, 3, 4} {
		d.push(v)
	}
	if d.mean() != 2.5 {
		t.Fatalf("mean %v", d.mean())
	}
	d.push(5) // evicts 1
	if math.Abs(d.mean()-3.5) > 1e-12 {
		t.Fatalf("rolling mean %v", d.mean())
	}
}
