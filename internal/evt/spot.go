package evt

import (
	"errors"
	"time"
)

// ErrNotReady is returned by SPOT.Step and DSPOT.Step when the detector
// has not been calibrated yet (Fit has not run, or a restore left it
// unready). Callers that drive a detector per-score must treat it as a
// per-sample failure, not a process-fatal condition.
var ErrNotReady = errors.New("evt: Step before Fit")

// minTailPeaks is the minimum number of excesses needed before a tail
// distribution is fitted — both by the batch POT calibration and by the
// streaming SPOT update rule.
const minTailPeaks = 8

// DefaultMaxExcesses is the default capacity of a streaming SPOT's excess
// ring. A few hundred peaks is a statistically comfortable tail sample
// (Siffer et al. calibrate on comparable peak counts), and the cap is what
// bounds refit cost, snapshot size, and long-run memory: without it a
// long-serving detector's excess buffer — and therefore the cost of every
// Grimshaw refit over it — grows linearly in exceedance count.
const DefaultMaxExcesses = 256

// RefitPolicy schedules the expensive part of streaming SPOT: the Grimshaw
// MLE refit of the GPD tail model over the excess buffer. Between full
// refits the detector maintains running sufficient statistics (sum and
// sum-of-squares of the retained excesses) and keeps the threshold live
// with the O(1) quantile update z = model.Quantile(t, q, n, nPeaks) — the
// (γ, σ) pair is stale, but the empirical tail fraction nPeaks/n it is
// applied to is not.
//
// The approximation contract: with Every = K, the GPD parameters lag the
// excess stream by at most K exceedances — or less, when a tail-mean shift
// beyond DriftTolerance forces an early refit. Every = 1 disables the
// amortization entirely and is bit-identical to the textbook SPOT update
// (a full fit on every exceedance), at the cost that made it ~18,000× the
// price of a cheap backend's push.
type RefitPolicy struct {
	// Every refits the tail model every K exceedances. 1 (or less) is the
	// exact mode: a full Grimshaw grid-scan fit on every exceedance,
	// bit-identical to SPOT before refits were amortized.
	Every int
	// DriftTolerance forces a refit early when the running tail mean has
	// shifted by more than this fraction relative to the mean at the last
	// refit — the drift trigger that keeps staleness data-dependent rather
	// than purely count-based. 0 disables the trigger.
	DriftTolerance float64
	// MaxExcesses caps the excess ring; once full, the oldest retained
	// excess is evicted per new exceedance. 0 means DefaultMaxExcesses.
	MaxExcesses int
	// Boundary is the alarm-boundary guard band, as a fraction of the
	// threshold margin z−t: a score within Boundary·(z−t) of the stale
	// threshold forces a refit before the alarm decision, so the verdicts
	// amortization could actually flip — the near-threshold ones — are
	// made against a fresh tail model. Scores far from z are insensitive
	// to parameter staleness and skip the fit. 0 disables the trigger.
	Boundary float64
}

// ExactRefitPolicy is the bit-identical-to-textbook-SPOT schedule: a full
// Grimshaw fit on every exceedance (the ring is still bounded, so even
// exact mode cannot leak memory or grow its snapshots without bound).
func ExactRefitPolicy() RefitPolicy {
	return RefitPolicy{Every: 1, MaxExcesses: DefaultMaxExcesses}
}

// DefaultRefitPolicy is the amortized serving schedule: a warm-started
// refit every 384 exceedances, pulled forward whenever the tail mean
// shifts by more than 30% or a score lands within 10% of the threshold
// margin, over a DefaultMaxExcesses-deep ring. The constants are tuned on
// the exceedance-heavy micro-benchmark field: the count schedule is a
// backstop, and the drift and boundary triggers carry the fidelity (see
// TestDSPOTStageAmortizedAlarmsGolden and TestSPOTAmortizedTracksExact).
func DefaultRefitPolicy() RefitPolicy {
	return RefitPolicy{Every: 384, DriftTolerance: 0.3, MaxExcesses: DefaultMaxExcesses, Boundary: 0.1}
}

// capacity resolves the policy's excess-ring capacity, flooring it so a
// full ring always holds enough peaks for a meaningful fit.
func (p RefitPolicy) capacity() int {
	if p.MaxExcesses <= 0 {
		return DefaultMaxExcesses
	}
	return max(p.MaxExcesses, 2*minTailPeaks)
}

// RefitStats are cumulative counters of a streaming tail model's
// maintenance work: how many exceedances fed the ring, and how many of
// them actually paid for a fit (warm Newton vs full grid scan). The gap
// between Exceedances and Refits is the amortization.
type RefitStats struct {
	// Exceedances counts tail updates (t < x ≤ z), each an O(1) ring push.
	Exceedances uint64 `json:"exceedances"`
	// Refits counts full tail-model fits (warm + grid).
	Refits uint64 `json:"refits"`
	// WarmRefits counts refits settled by the warm-started Newton search.
	WarmRefits uint64 `json:"warm_refits"`
	// GridRefits counts refits that ran the full Grimshaw grid scan —
	// exact-mode fits, cold first fits, and warm-start fallbacks.
	GridRefits uint64 `json:"grid_refits"`
	// RefitNanos is cumulative wall time spent inside refits. Refits are
	// rare (hundreds of µs each, amortized across many exceedances), so
	// the two clock reads per refit are noise; the counter lets the
	// metrics layer expose refit cost as a rate without touching the
	// benign path.
	RefitNanos uint64 `json:"refit_nanos"`
}

// Add returns the element-wise sum of two counter sets.
func (a RefitStats) Add(b RefitStats) RefitStats {
	return RefitStats{
		Exceedances: a.Exceedances + b.Exceedances,
		Refits:      a.Refits + b.Refits,
		WarmRefits:  a.WarmRefits + b.WarmRefits,
		GridRefits:  a.GridRefits + b.GridRefits,
		RefitNanos:  a.RefitNanos + b.RefitNanos,
	}
}

// SPOT is the streaming variant of POT: after calibration, each new score
// either triggers an alarm (score > z), refines the tail fit (t < score ≤ z)
// or is counted as normal (Siffer et al., Alg. 2). Policy schedules the
// tail refits (see RefitPolicy); set it before Fit. The benign path
// (x ≤ t) and the between-refits exceedance path are O(1) and allocation
// free — the excess ring is preallocated at Fit.
type SPOT struct {
	Level  float64
	Q      float64
	Policy RefitPolicy

	t     float64
	z     float64
	model GPD

	// excesses is a fixed-capacity ring: it grows in place to capacity,
	// then evict walks circularly over the oldest entries. sum/sumsq are
	// running sufficient statistics over exactly the retained entries.
	excesses []float64
	evict    int
	sum      float64
	sumsq    float64

	peaks      int // total exceedances observed — the Nt of the quantile
	n          int
	fitted     bool
	sinceRefit int
	refitMean  float64
	ready      bool

	refits, warmRefits, gridRefits uint64
	refitNanos                     uint64
}

// NewSPOT returns a SPOT detector with the given initial quantile level and
// target tail probability q, under the exact (bit-identical to textbook
// SPOT) refit policy; assign Policy before Fit to amortize refits.
func NewSPOT(level, q float64) *SPOT {
	return &SPOT{Level: level, Q: q, Policy: ExactRefitPolicy()}
}

// Fit calibrates the detector on an initial batch.
func (s *SPOT) Fit(init []float64) error {
	s.excesses = make([]float64, 0, s.Policy.capacity())
	s.evict, s.peaks, s.sum, s.sumsq = 0, 0, 0, 0
	s.sinceRefit, s.refitMean = 0, 0
	th, err := POT(init, s.Level, s.Q)
	if err != nil && th.Peaks == 0 {
		// Empirical fallback still yields usable t/z; the tail model forms
		// once enough live exceedances accumulate.
		s.t, s.z, s.model = th.Init, th.Z, GPD{}
		s.n = len(init)
		s.fitted = false
		s.ready = true
		return nil
	}
	s.t, s.z, s.model = th.Init, th.Z, th.Model
	s.n = th.N
	for _, v := range init {
		if v > s.t {
			s.pushExcess(v - s.t)
		}
	}
	s.fitted = true
	s.refitMean = s.tailMean()
	s.ready = true
	return nil
}

// Threshold returns the current alarm threshold z_q.
func (s *SPOT) Threshold() float64 { return s.z }

// TailThreshold returns the peaks-over-threshold level t: scores above it
// feed the tail model, scores above Threshold alarm.
func (s *SPOT) TailThreshold() float64 { return s.t }

// RefitStats returns the detector's cumulative tail-maintenance counters.
func (s *SPOT) RefitStats() RefitStats {
	return RefitStats{
		Exceedances: uint64(s.peaks),
		Refits:      s.refits,
		WarmRefits:  s.warmRefits,
		GridRefits:  s.gridRefits,
		RefitNanos:  s.refitNanos,
	}
}

// pushExcess inserts one excess into the ring, evicting the oldest entry
// once the ring is full, and maintains the running sufficient statistics.
// Zero allocations: the backing array is preallocated at Fit/SetState.
func (s *SPOT) pushExcess(e float64) {
	if len(s.excesses) < cap(s.excesses) {
		s.excesses = append(s.excesses, e)
	} else {
		old := s.excesses[s.evict]
		s.sum -= old
		s.sumsq -= old * old
		s.excesses[s.evict] = e
		s.evict++
		if s.evict == len(s.excesses) {
			s.evict = 0
		}
	}
	s.sum += e
	s.sumsq += e * e
	s.peaks++
}

func (s *SPOT) tailMean() float64 {
	if len(s.excesses) == 0 {
		return 0
	}
	return s.sum / float64(len(s.excesses))
}

// shouldRefit decides whether this exceedance pays for a full fit: always
// in exact mode (or before a first fit exists), every Policy.Every
// exceedances, or early when the tail mean drifted past the tolerance.
func (s *SPOT) shouldRefit() bool {
	if s.Policy.Every <= 1 || !s.fitted {
		return true
	}
	if s.sinceRefit >= s.Policy.Every {
		return true
	}
	if tol := s.Policy.DriftTolerance; tol > 0 && s.refitMean > 0 {
		if d := s.tailMean() - s.refitMean; d > tol*s.refitMean || -d > tol*s.refitMean {
			return true
		}
	}
	return false
}

// refit re-estimates (γ, σ) over the ring — warm-started Newton in
// amortized mode, the full Grimshaw grid scan in exact mode or when the
// warm start diverges — and rebases the threshold and drift reference.
func (s *SPOT) refit() {
	start := time.Now()
	if s.Policy.Every > 1 && s.fitted {
		if g, ok := fitGPDWarm(s.excesses, s.model, s.sum, s.sumsq); ok {
			s.model = g
			s.warmRefits++
		} else {
			s.model = FitGPD(s.excesses)
			s.gridRefits++
		}
	} else {
		s.model = FitGPD(s.excesses)
		s.gridRefits++
	}
	s.refits++
	s.fitted = true
	s.z = s.model.Quantile(s.t, s.Q, s.n, s.peaks)
	s.sinceRefit = 0
	s.refitMean = s.tailMean()
	s.refitNanos += uint64(time.Since(start))
}

// Step consumes one score and reports whether it is an anomaly.
// Non-anomalous peaks update the tail model, following the SPOT update
// rule under the refit policy: the benign path is a counter increment,
// an exceedance is an O(1) ring push plus quantile update, and only every
// Policy.Every-th exceedance (or a drift trigger) pays for a fit.
// Stepping before Fit returns ErrNotReady.
func (s *SPOT) Step(x float64) (bool, error) {
	if !s.ready {
		return false, ErrNotReady
	}
	// Alarm-boundary guard: a near-threshold score under a stale model is
	// the one decision amortization could flip, so it pays for a fresh fit
	// up front. sinceRefit > 0 gates repeats — after the refit, no further
	// boundary fit until a new excess actually lands in the ring.
	if b := s.Policy.Boundary; b > 0 && s.Policy.Every > 1 && s.fitted &&
		s.sinceRefit > 0 && len(s.excesses) >= minTailPeaks {
		if m := s.z - s.t; m > 0 {
			if d := x - s.z; d < b*m && -d < b*m {
				s.refit()
			}
		}
	}
	switch {
	case x > s.z:
		return true, nil
	case x > s.t:
		s.pushExcess(x - s.t)
		s.n++
		s.sinceRefit++
		if len(s.excesses) >= minTailPeaks {
			if s.shouldRefit() {
				s.refit()
			} else {
				// O(1) between refits: stale (γ, σ), live tail fraction.
				s.z = s.model.Quantile(s.t, s.Q, s.n, s.peaks)
			}
		}
		return false, nil
	default:
		s.n++
		return false, nil
	}
}

// SPOTState is the serializable runtime state of a SPOT detector, used by
// streaming-backend snapshots to checkpoint adaptive thresholds. Floats
// survive a JSON round-trip bit-exactly (encoding/json emits the shortest
// representation that parses back to the same float64).
//
// The ring bookkeeping fields (Evict, Peaks, Sum, SumSq, ...) were added
// with the amortized-refit rework; snapshots taken before it lack them and
// are detected by Peaks < len(Excesses), in which case SetState derives
// them from the excess slice (legacy snapshots predate any eviction, so
// the derivation is exact).
type SPOTState struct {
	Level    float64   `json:"level"`
	Q        float64   `json:"q"`
	T        float64   `json:"t"`
	Z        float64   `json:"z"`
	Model    GPD       `json:"model"`
	Excesses []float64 `json:"excesses"`
	N        int       `json:"n"`
	Ready    bool      `json:"ready"`

	Evict      int     `json:"evict,omitempty"`
	Peaks      int     `json:"peaks,omitempty"`
	Sum        float64 `json:"sum,omitempty"`
	SumSq      float64 `json:"sumsq,omitempty"`
	Fitted     bool    `json:"fitted,omitempty"`
	SinceRefit int     `json:"since_refit,omitempty"`
	RefitMean  float64 `json:"refit_mean,omitempty"`
}

// State captures the detector's current runtime state. The refit counters
// are observability, not state, and are deliberately not snapshotted.
func (s *SPOT) State() SPOTState {
	return SPOTState{
		Level: s.Level, Q: s.Q, T: s.t, Z: s.z, Model: s.model,
		Excesses: append([]float64(nil), s.excesses...), N: s.n, Ready: s.ready,
		Evict: s.evict, Peaks: s.peaks, Sum: s.sum, SumSq: s.sumsq,
		Fitted: s.fitted, SinceRefit: s.sinceRefit, RefitMean: s.refitMean,
	}
}

// SetState replaces the detector's runtime state with a snapshot taken by
// State. The ring is re-preallocated at the policy's capacity (or the
// snapshot's retained length, whichever is larger, so no retained excess
// is dropped when restoring under a smaller policy).
func (s *SPOT) SetState(st SPOTState) {
	s.Level, s.Q = st.Level, st.Q
	s.t, s.z, s.model = st.T, st.Z, st.Model
	s.excesses = make([]float64, 0, max(s.Policy.capacity(), len(st.Excesses)))
	s.excesses = append(s.excesses, st.Excesses...)
	s.n = st.N
	s.ready = st.Ready
	if st.Peaks < len(st.Excesses) {
		// Legacy snapshot: no eviction can have happened, so the running
		// statistics are exactly the slice's.
		s.evict = 0
		s.peaks = len(st.Excesses)
		s.sum, s.sumsq = 0, 0
		for _, e := range s.excesses {
			s.sum += e
			s.sumsq += e * e
		}
		s.fitted = st.Model.Sigma > 0
		s.sinceRefit = 0
		s.refitMean = s.tailMean()
		return
	}
	s.evict = st.Evict
	if s.evict < 0 || s.evict >= max(len(s.excesses), 1) {
		s.evict = 0
	}
	s.peaks = st.Peaks
	s.sum, s.sumsq = st.Sum, st.SumSq
	s.fitted = st.Fitted
	s.sinceRefit = st.SinceRefit
	s.refitMean = st.RefitMean
}
