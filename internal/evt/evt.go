// Package evt implements extreme value theory primitives for anomaly
// thresholding: generalized Pareto distribution (GPD) fitting via
// Grimshaw's maximum-likelihood trick with a method-of-moments fallback,
// the Peaks-Over-Threshold (POT) quantile estimator of Siffer et al.
// (KDD 2017), and its streaming variant SPOT.
//
// POT is the threshold selector used by AERO and by every baseline in this
// repository (paper §IV-B: level = 0.99, q = 1e-3 for all methods).
package evt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"aero/internal/stats"
)

// GPD holds generalized Pareto parameters: shape Gamma and scale Sigma.
type GPD struct {
	Gamma float64
	Sigma float64
}

// LogLikelihood returns the GPD log-likelihood of the excesses y.
func (g GPD) LogLikelihood(y []float64) float64 {
	n := float64(len(y))
	if g.Sigma <= 0 {
		return math.Inf(-1)
	}
	if math.Abs(g.Gamma) < 1e-12 {
		// exponential limit
		var s float64
		for _, v := range y {
			s += v
		}
		return -n*math.Log(g.Sigma) - s/g.Sigma
	}
	ll := -n * math.Log(g.Sigma)
	c := 1 + 1/g.Gamma
	for _, v := range y {
		u := 1 + g.Gamma*v/g.Sigma
		if u <= 0 {
			return math.Inf(-1)
		}
		ll -= c * math.Log(u)
	}
	return ll
}

// Quantile returns the 1-p tail quantile above threshold t for a GPD fitted
// to nPeaks excesses out of n observations:
//
//	z_q = t + σ/γ ((q·n/N_t)^{-γ} − 1)   (γ ≠ 0)
//	z_q = t − σ·ln(q·n/N_t)              (γ → 0)
func (g GPD) Quantile(t, q float64, n, nPeaks int) float64 {
	r := q * float64(n) / float64(nPeaks)
	if math.Abs(g.Gamma) < 1e-12 {
		return t - g.Sigma*math.Log(r)
	}
	return t + g.Sigma/g.Gamma*(math.Pow(r, -g.Gamma)-1)
}

// FitGPDMoments fits a GPD to excesses using the method of moments
// (the estimator FluxEV uses). Degenerate inputs fall back to an
// exponential fit.
func FitGPDMoments(y []float64) GPD {
	mean, std := stats.MeanStd(y)
	if mean <= 0 || std == 0 {
		if mean <= 0 {
			mean = 1e-8
		}
		return GPD{Gamma: 0, Sigma: mean}
	}
	r := mean * mean / (std * std)
	gamma := 0.5 * (1 - r)
	sigma := 0.5 * mean * (r + 1)
	if sigma <= 0 {
		sigma = mean
		gamma = 0
	}
	return GPD{Gamma: gamma, Sigma: sigma}
}

// FitGPD fits a GPD to the positive excesses y with Grimshaw's procedure:
// the two-parameter MLE is reduced to the scalar root-finding problem
// w(x) = u(x)·v(x) − 1 = 0, each root giving a candidate (γ, σ); the
// candidate with the highest likelihood wins, with the method-of-moments
// and exponential fits always in the candidate set as fallbacks.
func FitGPD(y []float64) GPD {
	candidates := []GPD{FitGPDMoments(y), {Gamma: 0, Sigma: math.Max(stats.Mean(y), 1e-12)}}

	ymin, ymax := stats.Min(y), stats.Max(y)
	ymean := stats.Mean(y)
	if len(y) >= 2 && ymax > 0 && ymin > 0 {
		u := func(x float64) float64 {
			var s float64
			for _, v := range y {
				s += 1 / (1 + x*v)
			}
			return s / float64(len(y))
		}
		v := func(x float64) float64 {
			var s float64
			for _, v2 := range y {
				s += math.Log(1 + x*v2)
			}
			return 1 + s/float64(len(y))
		}
		w := func(x float64) float64 { return u(x)*v(x) - 1 }

		eps := 1e-8 / ymean
		lo := -1/ymax + eps
		hiNeg := -eps
		hiPos := 2 * (ymean - ymin) / (ymin * ymin)
		for _, iv := range [][2]float64{{lo, hiNeg}, {eps, hiPos}} {
			for _, x := range findRoots(w, iv[0], iv[1], 64) {
				gamma := v(x) - 1
				if math.Abs(gamma) < 1e-12 || math.Abs(x) < 1e-300 {
					continue
				}
				sigma := gamma / x
				if sigma > 0 {
					candidates = append(candidates, GPD{Gamma: gamma, Sigma: sigma})
				}
			}
		}
	}

	best := candidates[0]
	bestLL := best.LogLikelihood(y)
	for _, c := range candidates[1:] {
		if ll := c.LogLikelihood(y); ll > bestLL {
			best, bestLL = c, ll
		}
	}
	return best
}

// findRoots scans [lo, hi] on a uniform grid and refines each sign change
// with bisection, returning up to a handful of roots.
func findRoots(f func(float64) float64, lo, hi float64, grid int) []float64 {
	if !(hi > lo) || math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil
	}
	var roots []float64
	step := (hi - lo) / float64(grid)
	prevX := lo
	prevF := f(lo)
	for i := 1; i <= grid; i++ {
		x := lo + float64(i)*step
		fx := f(x)
		if prevF == 0 {
			roots = append(roots, prevX)
		} else if !math.IsNaN(prevF) && !math.IsNaN(fx) && prevF*fx < 0 {
			roots = append(roots, bisect(f, prevX, x, prevF))
		}
		prevX, prevF = x, fx
		if len(roots) >= 8 {
			break
		}
	}
	return roots
}

func bisect(f func(float64) float64, a, b, fa float64) float64 {
	for i := 0; i < 60; i++ {
		mid := 0.5 * (a + b)
		fm := f(mid)
		if fm == 0 || (b-a) < 1e-14*math.Max(1, math.Abs(mid)) {
			return mid
		}
		if fa*fm < 0 {
			b = mid
		} else {
			a, fa = mid, fm
		}
	}
	return 0.5 * (a + b)
}

// Threshold is the outcome of a POT calibration.
type Threshold struct {
	// Init is the initial threshold t (the `level` empirical quantile).
	Init float64
	// Z is the calibrated anomaly threshold z_q.
	Z float64
	// Model is the fitted GPD over the excesses.
	Model GPD
	// Peaks is the number of excesses used for the fit.
	Peaks int
	// N is the number of calibration observations.
	N int
}

// ErrTooFewPeaks is returned when the calibration data has too few values
// above the initial threshold to fit a tail distribution.
var ErrTooFewPeaks = errors.New("evt: too few peaks over initial threshold")

// POT calibrates an anomaly threshold from scores: the initial threshold is
// the `level` empirical quantile, a GPD is fitted to the excesses, and the
// final threshold is the q tail quantile (Siffer et al., Alg. 1).
//
// When fewer than minPeaks scores exceed the initial level, the level is
// relaxed toward the median until enough peaks exist; if that fails, POT
// falls back to the (1−q) empirical quantile so callers always get a
// usable threshold.
func POT(scores []float64, level, q float64) (Threshold, error) {
	const minPeaks = 8
	n := len(scores)
	if n == 0 {
		return Threshold{}, errors.New("evt: no calibration scores")
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)

	for lvl := level; lvl >= 0.5; lvl -= 0.05 {
		t := stats.QuantileSorted(sorted, lvl)
		excesses := make([]float64, 0, n/20)
		for _, s := range scores {
			if s > t {
				excesses = append(excesses, s-t)
			}
		}
		if len(excesses) < minPeaks {
			continue
		}
		g := FitGPD(excesses)
		z := g.Quantile(t, q, n, len(excesses))
		if math.IsNaN(z) || math.IsInf(z, 0) || z < t {
			continue
		}
		return Threshold{Init: t, Z: z, Model: g, Peaks: len(excesses), N: n}, nil
	}
	// Fallback: empirical quantile.
	z := stats.QuantileSorted(sorted, 1-q)
	return Threshold{Init: z, Z: z, Peaks: 0, N: n}, fmt.Errorf("%w: fell back to empirical quantile", ErrTooFewPeaks)
}

// SPOT is the streaming variant of POT: after calibration, each new score
// either triggers an alarm (score > z), refines the tail fit (t < score ≤ z)
// or is counted as normal (Siffer et al., Alg. 2).
type SPOT struct {
	Level float64
	Q     float64

	t        float64
	z        float64
	model    GPD
	excesses []float64
	n        int
	ready    bool
}

// NewSPOT returns a SPOT detector with the given initial quantile level and
// target tail probability q.
func NewSPOT(level, q float64) *SPOT {
	return &SPOT{Level: level, Q: q}
}

// Fit calibrates the detector on an initial batch.
func (s *SPOT) Fit(init []float64) error {
	th, err := POT(init, s.Level, s.Q)
	if err != nil && th.Peaks == 0 {
		// Empirical fallback still yields usable t/z.
		s.t, s.z = th.Init, th.Z
		s.n = len(init)
		s.ready = true
		return nil
	}
	s.t, s.z, s.model = th.Init, th.Z, th.Model
	s.n = th.N
	s.excesses = make([]float64, 0, th.Peaks)
	for _, v := range init {
		if v > s.t {
			s.excesses = append(s.excesses, v-s.t)
		}
	}
	s.ready = true
	return nil
}

// Threshold returns the current alarm threshold z_q.
func (s *SPOT) Threshold() float64 { return s.z }

// SPOTState is the serializable runtime state of a SPOT detector, used by
// streaming-backend snapshots to checkpoint adaptive thresholds. Floats
// survive a JSON round-trip bit-exactly (encoding/json emits the shortest
// representation that parses back to the same float64).
type SPOTState struct {
	Level    float64   `json:"level"`
	Q        float64   `json:"q"`
	T        float64   `json:"t"`
	Z        float64   `json:"z"`
	Model    GPD       `json:"model"`
	Excesses []float64 `json:"excesses"`
	N        int       `json:"n"`
	Ready    bool      `json:"ready"`
}

// State captures the detector's current runtime state.
func (s *SPOT) State() SPOTState {
	return SPOTState{
		Level: s.Level, Q: s.Q, T: s.t, Z: s.z, Model: s.model,
		Excesses: append([]float64(nil), s.excesses...), N: s.n, Ready: s.ready,
	}
}

// SetState replaces the detector's runtime state with a snapshot taken by
// State.
func (s *SPOT) SetState(st SPOTState) {
	s.Level, s.Q = st.Level, st.Q
	s.t, s.z, s.model = st.T, st.Z, st.Model
	s.excesses = append(s.excesses[:0], st.Excesses...)
	s.n = st.N
	s.ready = st.Ready
}

// Step consumes one score and reports whether it is an anomaly. Non-anomalous
// peaks update the tail model, following the SPOT update rule.
func (s *SPOT) Step(x float64) bool {
	if !s.ready {
		panic("evt: SPOT.Step before Fit")
	}
	switch {
	case x > s.z:
		return true
	case x > s.t:
		s.excesses = append(s.excesses, x-s.t)
		s.n++
		if len(s.excesses) >= 8 {
			s.model = FitGPD(s.excesses)
			s.z = s.model.Quantile(s.t, s.Q, s.n, len(s.excesses))
		}
		return false
	default:
		s.n++
		return false
	}
}
