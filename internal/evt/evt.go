// Package evt implements extreme value theory primitives for anomaly
// thresholding: generalized Pareto distribution (GPD) fitting via
// Grimshaw's maximum-likelihood trick with a method-of-moments fallback,
// the Peaks-Over-Threshold (POT) quantile estimator of Siffer et al.
// (KDD 2017), and its streaming variant SPOT.
//
// POT is the threshold selector used by AERO and by every baseline in this
// repository (paper §IV-B: level = 0.99, q = 1e-3 for all methods).
package evt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"aero/internal/stats"
)

// GPD holds generalized Pareto parameters: shape Gamma and scale Sigma.
type GPD struct {
	Gamma float64
	Sigma float64
}

// LogLikelihood returns the GPD log-likelihood of the excesses y.
func (g GPD) LogLikelihood(y []float64) float64 {
	n := float64(len(y))
	if g.Sigma <= 0 {
		return math.Inf(-1)
	}
	if math.Abs(g.Gamma) < 1e-12 {
		// exponential limit
		var s float64
		for _, v := range y {
			s += v
		}
		return -n*math.Log(g.Sigma) - s/g.Sigma
	}
	ll := -n * math.Log(g.Sigma)
	c := 1 + 1/g.Gamma
	for _, v := range y {
		u := 1 + g.Gamma*v/g.Sigma
		if u <= 0 {
			return math.Inf(-1)
		}
		ll -= c * math.Log(u)
	}
	return ll
}

// Quantile returns the 1-p tail quantile above threshold t for a GPD fitted
// to nPeaks excesses out of n observations:
//
//	z_q = t + σ/γ ((q·n/N_t)^{-γ} − 1)   (γ ≠ 0)
//	z_q = t − σ·ln(q·n/N_t)              (γ → 0)
func (g GPD) Quantile(t, q float64, n, nPeaks int) float64 {
	r := q * float64(n) / float64(nPeaks)
	if math.Abs(g.Gamma) < 1e-12 {
		return t - g.Sigma*math.Log(r)
	}
	return t + g.Sigma/g.Gamma*(math.Pow(r, -g.Gamma)-1)
}

// FitGPDMoments fits a GPD to excesses using the method of moments
// (the estimator FluxEV uses). Degenerate inputs fall back to an
// exponential fit.
func FitGPDMoments(y []float64) GPD {
	mean, std := stats.MeanStd(y)
	if mean <= 0 || std == 0 {
		if mean <= 0 {
			mean = 1e-8
		}
		return GPD{Gamma: 0, Sigma: mean}
	}
	r := mean * mean / (std * std)
	gamma := 0.5 * (1 - r)
	sigma := 0.5 * mean * (r + 1)
	if sigma <= 0 {
		sigma = mean
		gamma = 0
	}
	return GPD{Gamma: gamma, Sigma: sigma}
}

// FitGPD fits a GPD to the positive excesses y with Grimshaw's procedure:
// the two-parameter MLE is reduced to the scalar root-finding problem
// w(x) = u(x)·v(x) − 1 = 0, each root giving a candidate (γ, σ); the
// candidate with the highest likelihood wins, with the method-of-moments
// and exponential fits always in the candidate set as fallbacks.
func FitGPD(y []float64) GPD {
	candidates := []GPD{FitGPDMoments(y), {Gamma: 0, Sigma: math.Max(stats.Mean(y), 1e-12)}}

	ymin, ymax := stats.Min(y), stats.Max(y)
	ymean := stats.Mean(y)
	if len(y) >= 2 && ymax > 0 && ymin > 0 {
		u := func(x float64) float64 {
			var s float64
			for _, v := range y {
				s += 1 / (1 + x*v)
			}
			return s / float64(len(y))
		}
		v := func(x float64) float64 {
			var s float64
			for _, v2 := range y {
				s += math.Log(1 + x*v2)
			}
			return 1 + s/float64(len(y))
		}
		w := func(x float64) float64 { return u(x)*v(x) - 1 }

		eps := 1e-8 / ymean
		lo := -1/ymax + eps
		hiNeg := -eps
		hiPos := 2 * (ymean - ymin) / (ymin * ymin)
		for _, iv := range [][2]float64{{lo, hiNeg}, {eps, hiPos}} {
			for _, x := range findRoots(w, iv[0], iv[1], 64) {
				gamma := v(x) - 1
				if math.Abs(gamma) < 1e-12 || math.Abs(x) < 1e-300 {
					continue
				}
				sigma := gamma / x
				if sigma > 0 {
					candidates = append(candidates, GPD{Gamma: gamma, Sigma: sigma})
				}
			}
		}
	}

	best := candidates[0]
	bestLL := best.LogLikelihood(y)
	for _, c := range candidates[1:] {
		if ll := c.LogLikelihood(y); ll > bestLL {
			best, bestLL = c, ll
		}
	}
	return best
}

// findRoots scans [lo, hi] on a uniform grid and refines each sign change
// with bisection, returning up to a handful of roots.
func findRoots(f func(float64) float64, lo, hi float64, grid int) []float64 {
	if !(hi > lo) || math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil
	}
	var roots []float64
	step := (hi - lo) / float64(grid)
	prevX := lo
	prevF := f(lo)
	for i := 1; i <= grid; i++ {
		x := lo + float64(i)*step
		fx := f(x)
		if prevF == 0 {
			roots = append(roots, prevX)
		} else if !math.IsNaN(prevF) && !math.IsNaN(fx) && prevF*fx < 0 {
			roots = append(roots, bisect(f, prevX, x, prevF))
		}
		prevX, prevF = x, fx
		if len(roots) >= 8 {
			break
		}
	}
	return roots
}

func bisect(f func(float64) float64, a, b, fa float64) float64 {
	for i := 0; i < 60; i++ {
		mid := 0.5 * (a + b)
		fm := f(mid)
		if fm == 0 || (b-a) < 1e-14*math.Max(1, math.Abs(mid)) {
			return mid
		}
		if fa*fm < 0 {
			b = mid
		} else {
			a, fa = mid, fm
		}
	}
	return 0.5 * (a + b)
}

// Threshold is the outcome of a POT calibration.
type Threshold struct {
	// Init is the initial threshold t (the `level` empirical quantile).
	Init float64
	// Z is the calibrated anomaly threshold z_q.
	Z float64
	// Model is the fitted GPD over the excesses.
	Model GPD
	// Peaks is the number of excesses used for the fit.
	Peaks int
	// N is the number of calibration observations.
	N int
}

// ErrTooFewPeaks is returned when the calibration data has too few values
// above the initial threshold to fit a tail distribution.
var ErrTooFewPeaks = errors.New("evt: too few peaks over initial threshold")

// POT calibrates an anomaly threshold from scores: the initial threshold is
// the `level` empirical quantile, a GPD is fitted to the excesses, and the
// final threshold is the q tail quantile (Siffer et al., Alg. 1).
//
// When fewer than minPeaks scores exceed the initial level, the level is
// relaxed toward the median until enough peaks exist; if that fails, POT
// falls back to the (1−q) empirical quantile so callers always get a
// usable threshold.
func POT(scores []float64, level, q float64) (Threshold, error) {
	const minPeaks = minTailPeaks
	n := len(scores)
	if n == 0 {
		return Threshold{}, errors.New("evt: no calibration scores")
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)

	// One excess buffer reused across level relaxation: calibration sits
	// on the retrain path, and each lowered level only grows the excess
	// set, so the buffer settles after at most a couple of regrowths.
	excesses := make([]float64, 0, n/20+minPeaks)
	for lvl := level; lvl >= 0.5; lvl -= 0.05 {
		t := stats.QuantileSorted(sorted, lvl)
		excesses = excesses[:0]
		for _, s := range scores {
			if s > t {
				excesses = append(excesses, s-t)
			}
		}
		if len(excesses) < minPeaks {
			continue
		}
		g := FitGPD(excesses)
		z := g.Quantile(t, q, n, len(excesses))
		if math.IsNaN(z) || math.IsInf(z, 0) || z < t {
			continue
		}
		return Threshold{Init: t, Z: z, Model: g, Peaks: len(excesses), N: n}, nil
	}
	// Fallback: empirical quantile.
	z := stats.QuantileSorted(sorted, 1-q)
	return Threshold{Init: z, Z: z, Peaks: 0, N: n}, fmt.Errorf("%w: fell back to empirical quantile", ErrTooFewPeaks)
}

// fitGPDWarm re-fits a GPD to y by Newton iteration on Grimshaw's scalar
// equation w(x) = u(x)·v(x) − 1 = 0, seeded at the previous fit's root
// x* = γ/σ. Between consecutive refits of a streaming tail model the root
// moves little, so a handful of Newton steps replaces the 64-point grid
// scan plus bisections of FitGPD. The converged root competes against the
// method-of-moments and exponential candidates (built O(1) from the
// caller's running sum / sum-of-squares) on log-likelihood, exactly as in
// FitGPD's candidate set.
//
// When the Newton search is unavailable — the seed is the trivial root
// x = 0 (the previous fit WAS a moment candidate), lands outside the
// feasibility domain, leaves its branch, or fails to converge — the
// refreshed moment candidates alone are the fit: they are FitGPD's own
// non-root candidates, and a tail they misdescribe yields a nontrivial
// seed that re-arms Newton at the next refit. ok is false only when the
// data itself is degenerate (fewer than 2 excesses, no positive excess,
// invalid previous scale); the caller then falls back to the grid scan.
func fitGPDWarm(y []float64, prev GPD, sum, sumsq float64) (g GPD, ok bool) {
	n := float64(len(y))
	if len(y) < 2 || prev.Sigma <= 0 {
		return GPD{}, false
	}
	ymax := y[0]
	for _, v := range y[1:] {
		if v > ymax {
			ymax = v
		}
	}
	if !(ymax > 0) {
		return GPD{}, false
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	// ll is GPD.LogLikelihood with the exponential limit evaluated O(1)
	// from the running sum — candidate selection is the only consumer, so
	// the accumulation-order difference from a fresh Σy is immaterial.
	ll := func(c GPD) float64 {
		if math.Abs(c.Gamma) < 1e-12 {
			return -n*math.Log(c.Sigma) - sum/c.Sigma
		}
		return c.LogLikelihood(y)
	}
	moments := func() (GPD, bool) {
		cands := momentCandidates(mean, variance)
		best := cands[0]
		if cands[1] != cands[0] && ll(cands[1]) > ll(best) {
			best = cands[1]
		}
		return best, true
	}
	x := prev.Gamma / prev.Sigma
	lo := -1 / ymax // feasibility: 1 + x·yᵢ > 0 for every excess
	// A seed at (or numerically indistinguishable from) the trivial root
	// x = 0 cannot be improved by Newton — w(0) = 0 identically.
	if math.IsNaN(x) || math.IsInf(x, 0) || x <= lo || math.Abs(x) < 1e-8/math.Max(mean, 1e-300) {
		return moments()
	}

	const maxIter = 12
	root, converged := x, false
	var rootSlog float64 // Σ log(1+x·yᵢ) at the converged root
	for i := 0; i < maxIter; i++ {
		var su, slog, sd, sd2 float64
		feasible := true
		for _, v := range y {
			d := 1 + x*v
			if d <= 0 {
				feasible = false
				break
			}
			inv := 1 / d
			su += inv
			slog += math.Log(d)
			sd += v * inv
			sd2 += v * inv * inv
		}
		if !feasible {
			return moments()
		}
		u := su / n
		v := 1 + slog/n
		w := u*v - 1
		if math.Abs(w) < 1e-10 {
			root, converged, rootSlog = x, true, slog
			break
		}
		// w'(x) = u'(x)·v(x) + u(x)·v'(x), with u' = −(1/n)Σ yᵢ/(1+xyᵢ)²
		// and v' = (1/n)Σ yᵢ/(1+xyᵢ).
		wp := (-sd2/n)*v + u*(sd/n)
		if wp == 0 || math.IsNaN(wp) {
			return moments()
		}
		nx := x - w/wp
		if math.IsNaN(nx) || math.IsInf(nx, 0) {
			return moments()
		}
		// Stay on the seed's branch: the two root regions are (lo, 0) and
		// (0, ∞); crossing zero means the iteration is escaping toward the
		// trivial root or the opposite tail shape — that is a diverged warm
		// start, not a refinement.
		if (x > 0) != (nx > 0) {
			return moments()
		}
		if nx <= lo {
			nx = 0.5 * (x + lo)
		}
		// Early accept: a Newton step this small cannot move w back above
		// tolerance (quadratic convergence), so skip the O(n) verification
		// pass and keep the current iterate's sums.
		if d := nx - x; nx == x || (d < 1e-9*math.Abs(x) && -d < 1e-9*math.Abs(x)) {
			root, converged, rootSlog = x, true, slog
			break
		}
		x = nx
	}
	if !converged {
		return moments()
	}

	// Recover (γ, σ) from the root — γ = (1/n)Σ log(1+x*·yᵢ), already in
	// hand from the converged iteration — and pit the fit against the
	// moment candidates. The root candidate's log-likelihood is closed-form
	// from the same sum (−n·log σ − (1+1/γ)·Σlog), so the whole tournament
	// costs one data pass (the MoM candidate's likelihood).
	gamma := rootSlog / n
	if math.Abs(gamma) < 1e-12 || math.Abs(root) < 1e-300 {
		return moments()
	}
	sigma := gamma / root
	if sigma <= 0 {
		return moments()
	}
	best := GPD{Gamma: gamma, Sigma: sigma}
	bestLL := -n*math.Log(sigma) - (1+1/gamma)*rootSlog
	cands := momentCandidates(mean, variance)
	for i, c := range cands {
		if i > 0 && c == cands[0] {
			continue
		}
		if l := ll(c); l > bestLL {
			best, bestLL = c, l
		}
	}
	return best, true
}

// momentCandidates builds the method-of-moments and exponential GPD
// candidates from the tail's running mean and (biased) variance — the
// sufficient-statistics form of FitGPDMoments, O(1) given the sums.
func momentCandidates(mean, variance float64) [2]GPD {
	exp := GPD{Gamma: 0, Sigma: math.Max(mean, 1e-12)}
	if mean <= 0 || variance <= 0 {
		return [2]GPD{exp, exp}
	}
	r := mean * mean / variance
	mom := GPD{Gamma: 0.5 * (1 - r), Sigma: 0.5 * mean * (r + 1)}
	if mom.Sigma <= 0 {
		mom = exp
	}
	return [2]GPD{mom, exp}
}
