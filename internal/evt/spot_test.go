package evt

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// spotCalib is the shared calibration batch for the SPOT policy tests:
// heavy-ish one-sided noise, the shape of an anomaly-score stream.
func spotCalib(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Abs(rng.NormFloat64())
	}
	return out
}

// TestSPOTStateBounded pins the fix for the unbounded excess buffer: after
// a million steps of in-tail traffic the retained state — and therefore
// every snapshot and every refit — stays capped at the policy's ring
// capacity, in exact mode too.
func TestSPOTStateBounded(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy RefitPolicy
	}{
		{"exact", ExactRefitPolicy()},
		{"amortized", DefaultRefitPolicy()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSPOT(0.99, 1e-3)
			s.Policy = tc.policy
			if err := s.Fit(spotCalib(11, 3000)); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(12))
			for i := 0; i < 1_000_000; i++ {
				// In-tail with probability ~1/4 keeps the ring churning far
				// past its capacity without tripping alarms every step.
				x := math.Abs(rng.NormFloat64())
				if rng.Intn(4) == 0 {
					x = s.t + 0.1*(s.z-s.t)*rng.Float64()
				}
				s.Step(x)
			}
			if cap(s.excesses) != tc.policy.capacity() {
				t.Fatalf("ring capacity drifted: %d, want %d", cap(s.excesses), tc.policy.capacity())
			}
			st := s.State()
			if len(st.Excesses) > tc.policy.capacity() {
				t.Fatalf("retained %d excesses, cap %d", len(st.Excesses), tc.policy.capacity())
			}
			blob, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			// ~25 bytes/float is a generous ceiling; the pre-fix behavior
			// would be megabytes here (hundreds of thousands of excesses).
			if len(blob) > 32*1024 {
				t.Fatalf("snapshot is %d bytes after 1e6 steps; state is not bounded", len(blob))
			}
			if s.peaks < DefaultMaxExcesses {
				t.Fatalf("test fed only %d exceedances; ring never overflowed", s.peaks)
			}
		})
	}
}

// TestSPOTSnapshotRoundTripAfterEviction pins resume bit-identity once the
// ring has wrapped: State/SetState must carry the eviction cursor and the
// incrementally-maintained sufficient statistics verbatim (recomputing the
// sums from the slice is NOT bit-identical to the +=/-= history).
func TestSPOTSnapshotRoundTripAfterEviction(t *testing.T) {
	mk := func() *SPOT {
		s := NewSPOT(0.99, 1e-3)
		s.Policy = RefitPolicy{Every: 16, DriftTolerance: 0.2, MaxExcesses: 64}
		if err := s.Fit(spotCalib(21, 2000)); err != nil {
			t.Fatal(err)
		}
		return s
	}
	feed := func(s *SPOT, seed int64, n int) []bool {
		rng := rand.New(rand.NewSource(seed))
		out := make([]bool, n)
		for i := range out {
			x := math.Abs(rng.NormFloat64())
			if rng.Intn(3) == 0 {
				x = s.t + 0.2*(s.z-s.t)*rng.Float64()
			}
			out[i], _ = s.Step(x)
		}
		return out
	}

	full := mk()
	want := feed(full, 31, 4000)

	cut := mk()
	feed(cut, 31, 2000) // identical prefix (same seed, same stream)
	blob, err := json.Marshal(cut.State())
	if err != nil {
		t.Fatal(err)
	}
	var st SPOTState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	resumed := NewSPOT(0.99, 1e-3)
	resumed.Policy = cut.Policy
	resumed.SetState(st)
	if resumed.peaks <= 64 {
		t.Fatalf("ring never wrapped (peaks %d); eviction round-trip untested", resumed.peaks)
	}
	if resumed.sum != cut.sum || resumed.sumsq != cut.sumsq || resumed.evict != cut.evict {
		t.Fatalf("bookkeeping did not round-trip: sum %v/%v sumsq %v/%v evict %d/%d",
			resumed.sum, cut.sum, resumed.sumsq, cut.sumsq, resumed.evict, cut.evict)
	}

	// Continue the cut stream on the restored detector: every verdict and
	// the final threshold must equal the uninterrupted run's exactly. The
	// loop first burns through the prefix to advance the RNG to the cut
	// point (each step draws the same number of variates regardless of
	// detector state, so the suffix stream matches the full run's), then
	// resets to the snapshot and checks the suffix for identity.
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 4000; i++ {
		x := math.Abs(rng.NormFloat64())
		if rng.Intn(3) == 0 {
			x = resumed.t + 0.2*(resumed.z-resumed.t)*rng.Float64()
		}
		if i < 2000 {
			if i == 1999 {
				resumed = NewSPOT(0.99, 1e-3)
				resumed.Policy = cut.Policy
				resumed.SetState(st)
			}
			continue
		}
		if fired, _ := resumed.Step(x); fired != want[i] {
			t.Fatalf("resumed verdict %d: got %v want %v", i, fired, want[i])
		}
	}
	if resumed.z != full.z {
		t.Fatalf("resumed threshold %v != uninterrupted %v", resumed.z, full.z)
	}
}

// TestSPOTLegacySnapshotCompat: snapshots taken before the ring rework lack
// the bookkeeping fields; SetState must detect them (Peaks < len(Excesses))
// and derive exact equivalents, so old engine checkpoints keep restoring.
func TestSPOTLegacySnapshotCompat(t *testing.T) {
	s := NewSPOT(0.99, 1e-3)
	if err := s.Fit(spotCalib(41, 2000)); err != nil {
		t.Fatal(err)
	}
	legacy := SPOTState{
		Level: s.Level, Q: s.Q, T: s.t, Z: s.z, Model: s.model,
		Excesses: append([]float64(nil), s.excesses...), N: s.n, Ready: true,
	}
	r := NewSPOT(0.99, 1e-3)
	r.SetState(legacy)
	if r.peaks != len(legacy.Excesses) {
		t.Fatalf("derived peaks %d, want %d", r.peaks, len(legacy.Excesses))
	}
	var sum, sumsq float64
	for _, e := range legacy.Excesses {
		sum += e
		sumsq += e * e
	}
	if r.sum != sum || r.sumsq != sumsq {
		t.Fatalf("derived sums %v/%v, want %v/%v", r.sum, r.sumsq, sum, sumsq)
	}
	if !r.fitted {
		t.Fatal("legacy state with a fitted model restored as unfitted")
	}
	if fired, err := r.Step(r.z + 1); err != nil || !fired {
		t.Fatalf("restored legacy detector does not alarm above z (fired %v, err %v)", fired, err)
	}
}

// TestSPOTAmortizedTracksExact is the approximation property test: on
// drifting score streams, the amortized policy's threshold must stay
// within a pinned relative tolerance of the exact policy's at every step,
// and converge to it at each refit boundary.
func TestSPOTAmortizedTracksExact(t *testing.T) {
	for _, seed := range []int64{51, 52, 53} {
		exact := NewSPOT(0.99, 1e-3)
		exact.Policy = ExactRefitPolicy()
		amort := NewSPOT(0.99, 1e-3)
		amort.Policy = DefaultRefitPolicy()
		calib := spotCalib(seed, 3000)
		if err := exact.Fit(calib); err != nil {
			t.Fatal(err)
		}
		if err := amort.Fit(calib); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed + 100))
		scale := 1.0
		worst := 0.0
		for i := 0; i < 20000; i++ {
			// Slow variance drift: the tail the models chase keeps moving.
			scale *= 1 + 0.0002*rng.NormFloat64()
			if scale < 0.25 {
				scale = 0.25
			}
			x := scale * math.Abs(rng.NormFloat64())
			exact.Step(x)
			amort.Step(x)
			if d := math.Abs(amort.z-exact.z) / exact.z; d > worst {
				worst = d
			}
		}
		if worst > 0.35 {
			t.Fatalf("seed %d: amortized threshold strayed %.1f%% from exact (tolerance 35%%)", seed, 100*worst)
		}
		// Exact mode pays one fit per exceedance; the drifting stream keeps
		// scores near the moving threshold, so the boundary guard fires
		// often here — amortization must still cut fits several-fold.
		rs := amort.RefitStats()
		if rs.Refits*3 > rs.Exceedances {
			t.Fatalf("amortization vacuous: %d refits for %d exceedances", rs.Refits, rs.Exceedances)
		}
	}
}

// TestSPOTExactPolicyBitIdentical pins the exact-mode contract directly:
// under Every=1 the new ring-based implementation must walk through
// byte-for-byte the same fits as the textbook update (a full FitGPD over
// all retained excesses per exceedance), pre-overflow.
func TestSPOTExactPolicyBitIdentical(t *testing.T) {
	s := NewSPOT(0.99, 1e-3)
	if err := s.Fit(spotCalib(61, 2000)); err != nil {
		t.Fatal(err)
	}
	// Shadow reference: the pre-rework update rule, reconstructed.
	excesses := append([]float64(nil), s.excesses...)
	tRef, zRef, n, model := s.t, s.z, s.n, s.model
	rng := rand.New(rand.NewSource(62))
	for i := 0; i < 3000; i++ {
		if len(excesses) >= cap(s.excesses) {
			break // identity is only promised pre-overflow
		}
		x := math.Abs(rng.NormFloat64())
		if rng.Intn(3) == 0 {
			x = tRef + 0.3*(zRef-tRef)*rng.Float64()
		}
		fired, _ := s.Step(x)
		var refFired bool
		switch {
		case x > zRef:
			refFired = true
		case x > tRef:
			excesses = append(excesses, x-tRef)
			n++
			if len(excesses) >= 8 {
				model = FitGPD(excesses)
				zRef = model.Quantile(tRef, 1e-3, n, len(excesses))
			}
		default:
			n++
		}
		if fired != refFired {
			t.Fatalf("step %d: verdict %v, textbook %v", i, fired, refFired)
		}
		if s.z != zRef {
			t.Fatalf("step %d: threshold %v, textbook %v (must be bit-identical)", i, s.z, zRef)
		}
	}
	if len(excesses) < 100 {
		t.Fatalf("only %d exceedances exercised; identity check too weak", len(excesses))
	}
}

// TestSPOTStepBenignAllocs pins the serving-path allocation budget: the
// benign step and the between-refits exceedance step are both zero-alloc
// (the ring is preallocated at Fit; the quantile update is arithmetic).
func TestSPOTStepBenignAllocs(t *testing.T) {
	s := NewSPOT(0.99, 1e-3)
	// Refits disabled after Fit: isolates the between-refits path.
	s.Policy = RefitPolicy{Every: 1 << 30}
	if err := s.Fit(spotCalib(71, 3000)); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() { s.Step(0) }); allocs != 0 {
		t.Fatalf("benign Step allocates %.1f objects, want 0", allocs)
	}
	i := 0
	if allocs := testing.AllocsPerRun(1000, func() {
		i++
		s.Step(s.t + 0.001 + 0.0001*float64(i%7))
	}); allocs != 0 {
		t.Fatalf("exceedance Step allocates %.1f objects, want 0", allocs)
	}
}

// BenchmarkSPOTStep measures the three Step paths the refit policy
// separates: the benign O(1) common case, the amortized in-tail update
// (ring push + O(1) quantile, a refit every Policy.Every-th call), and the
// exact mode that pays a full Grimshaw grid fit per exceedance — the
// pre-rework price of every in-tail step.
func BenchmarkSPOTStep(b *testing.B) {
	setup := func(b *testing.B, p RefitPolicy) *SPOT {
		b.Helper()
		s := NewSPOT(0.99, 1e-3)
		s.Policy = p
		if err := s.Fit(spotCalib(81, 3000)); err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("benign", func(b *testing.B) {
		s := setup(b, DefaultRefitPolicy())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Step(0.1)
		}
	})
	b.Run("exceedance", func(b *testing.B) {
		s := setup(b, DefaultRefitPolicy())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Step(s.t + 0.001 + 0.0001*float64(i%7))
		}
	})
	b.Run("refit", func(b *testing.B) {
		s := setup(b, ExactRefitPolicy())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Step(s.t + 0.001 + 0.0001*float64(i%7))
		}
	})
}
