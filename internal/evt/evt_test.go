package evt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// sampleGPD draws n samples from GPD(gamma, sigma) by inverse transform.
func sampleGPD(gamma, sigma float64, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := rng.Float64()
		if math.Abs(gamma) < 1e-12 {
			out[i] = -sigma * math.Log(1-u)
		} else {
			out[i] = sigma / gamma * (math.Pow(1-u, -gamma) - 1)
		}
	}
	return out
}

func TestFitGPDRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ gamma, sigma float64 }{
		{0.0, 1.0},
		{0.2, 2.0},
		{-0.2, 1.5},
		{0.4, 0.5},
	} {
		y := sampleGPD(tc.gamma, tc.sigma, 5000, rng)
		g := FitGPD(y)
		if math.Abs(g.Gamma-tc.gamma) > 0.12 {
			t.Errorf("gamma: got %.3f want %.3f", g.Gamma, tc.gamma)
		}
		if math.Abs(g.Sigma-tc.sigma)/tc.sigma > 0.15 {
			t.Errorf("sigma: got %.3f want %.3f", g.Sigma, tc.sigma)
		}
	}
}

func TestFitGPDMomentsExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	y := sampleGPD(0, 2.0, 8000, rng)
	g := FitGPDMoments(y)
	if math.Abs(g.Gamma) > 0.1 {
		t.Errorf("gamma: got %.3f want ~0", g.Gamma)
	}
	if math.Abs(g.Sigma-2.0) > 0.25 {
		t.Errorf("sigma: got %.3f want ~2", g.Sigma)
	}
}

func TestFitGPDDegenerateInputs(t *testing.T) {
	// Must not panic or return invalid scale.
	for _, y := range [][]float64{
		{},
		{1},
		{1, 1, 1, 1},
		{0.5, 0.5},
	} {
		g := FitGPD(y)
		if !(g.Sigma > 0) {
			t.Fatalf("sigma must stay positive, got %v for %v", g.Sigma, y)
		}
	}
}

func TestGPDLogLikelihoodPrefersTrueParams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	y := sampleGPD(0.3, 1.0, 4000, rng)
	good := GPD{Gamma: 0.3, Sigma: 1.0}
	bad := GPD{Gamma: -0.3, Sigma: 3.0}
	if good.LogLikelihood(y) <= bad.LogLikelihood(y) {
		t.Fatal("true parameters should have higher likelihood")
	}
}

func TestGPDQuantileExponentialLimit(t *testing.T) {
	g := GPD{Gamma: 0, Sigma: 1}
	// z = t - sigma*ln(q n / Npeaks)
	z := g.Quantile(10, 0.001, 10000, 100)
	want := 10 - math.Log(0.001*10000/100)
	if math.Abs(z-want) > 1e-9 {
		t.Fatalf("got %v want %v", z, want)
	}
}

func TestPOTThresholdAboveInit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	scores := make([]float64, 5000)
	for i := range scores {
		scores[i] = math.Abs(rng.NormFloat64())
	}
	th, err := POT(scores, 0.99, 0.001)
	if err != nil {
		t.Fatalf("POT: %v", err)
	}
	if th.Z < th.Init {
		t.Fatalf("threshold %v below init %v", th.Z, th.Init)
	}
	if th.Peaks < 8 {
		t.Fatalf("too few peaks: %d", th.Peaks)
	}
	// Empirically, almost everything should fall below z.
	above := 0
	for _, s := range scores {
		if s >= th.Z {
			above++
		}
	}
	if frac := float64(above) / float64(len(scores)); frac > 0.01 {
		t.Fatalf("%.3f of calibration scores above threshold", frac)
	}
}

func TestPOTMonotonicInQ(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scores := make([]float64, 4000)
	for i := range scores {
		scores[i] = rng.ExpFloat64()
	}
	t1, err1 := POT(scores, 0.98, 1e-2)
	t2, err2 := POT(scores, 0.98, 1e-4)
	if err1 != nil || err2 != nil {
		t.Fatalf("POT errors: %v %v", err1, err2)
	}
	if !(t2.Z > t1.Z) {
		t.Fatalf("smaller q must give larger threshold: q=1e-2→%v q=1e-4→%v", t1.Z, t2.Z)
	}
}

func TestPOTEmptyInput(t *testing.T) {
	if _, err := POT(nil, 0.99, 1e-3); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestPOTConstantScoresFallsBack(t *testing.T) {
	scores := make([]float64, 100)
	for i := range scores {
		scores[i] = 1
	}
	th, _ := POT(scores, 0.99, 1e-3)
	if math.IsNaN(th.Z) || math.IsInf(th.Z, 0) {
		t.Fatalf("unusable fallback threshold %v", th.Z)
	}
}

func TestSPOTFlagsInjectedExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	init := make([]float64, 3000)
	for i := range init {
		init[i] = math.Abs(rng.NormFloat64())
	}
	s := NewSPOT(0.99, 1e-3)
	if err := s.Fit(init); err != nil {
		t.Fatalf("fit: %v", err)
	}
	// Normal stream: should rarely alarm.
	alarms := 0
	for i := 0; i < 2000; i++ {
		if fired, _ := s.Step(math.Abs(rng.NormFloat64())); fired {
			alarms++
		}
	}
	if alarms > 20 {
		t.Fatalf("too many false alarms on normal data: %d", alarms)
	}
	// Extreme values: must alarm.
	if fired, _ := s.Step(100); !fired {
		t.Fatal("missed an extreme value")
	}
}

// TestSPOTStepBeforeFitTypedError is the regression test for the old
// behavior, where an unwarmed Step panicked and could take an engine
// shard worker down with it: Step before Fit must instead report
// ErrNotReady, for both SPOT and the DSPOT wrapper, and leave the
// detector usable once Fit eventually runs.
func TestSPOTStepBeforeFitTypedError(t *testing.T) {
	s := NewSPOT(0.99, 1e-3)
	if fired, err := s.Step(1); !errors.Is(err, ErrNotReady) || fired {
		t.Fatalf("SPOT.Step before Fit: got (%v, %v), want (false, ErrNotReady)", fired, err)
	}
	d := NewDSPOT(0.99, 1e-3, 5)
	if fired, err := d.Step(1); !errors.Is(err, ErrNotReady) || fired {
		t.Fatalf("DSPOT.Step before Fit: got (%v, %v), want (false, ErrNotReady)", fired, err)
	}
	// The failed step must not have corrupted anything: Fit afterwards
	// yields a working detector.
	rng := rand.New(rand.NewSource(8))
	init := make([]float64, 2000)
	for i := range init {
		init[i] = math.Abs(rng.NormFloat64())
	}
	if err := s.Fit(init); err != nil {
		t.Fatalf("fit after failed step: %v", err)
	}
	if fired, err := s.Step(100); err != nil || !fired {
		t.Fatalf("step after fit: got (%v, %v), want (true, nil)", fired, err)
	}
}

func TestSPOTUpdatesTailModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	init := make([]float64, 2000)
	for i := range init {
		init[i] = rng.ExpFloat64()
	}
	s := NewSPOT(0.98, 1e-3)
	if err := s.Fit(init); err != nil {
		t.Fatalf("fit: %v", err)
	}
	z0 := s.Threshold()
	// Feed moderately large (peak but sub-threshold) values: threshold
	// should adapt without alarming forever.
	for i := 0; i < 500; i++ {
		s.Step(rng.ExpFloat64())
	}
	if s.Threshold() <= 0 || math.IsNaN(s.Threshold()) {
		t.Fatalf("threshold degenerated from %v to %v", z0, s.Threshold())
	}
}

func BenchmarkFitGPD(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	y := sampleGPD(0.2, 1, 500, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FitGPD(y)
	}
}

func BenchmarkPOT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 10000)
	for i := range scores {
		scores[i] = math.Abs(rng.NormFloat64())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := POT(scores, 0.99, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}
