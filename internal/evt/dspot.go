package evt

import "fmt"

// DSPOT is the drift-aware variant of SPOT (Siffer et al., KDD 2017,
// §4.4): before thresholding, each observation is re-centred on the mean
// of a trailing window, so slow level drift (e.g. atmospheric extinction
// over a night) does not inflate the tail model. Alarms are raised on the
// drift-corrected residuals.
type DSPOT struct {
	spot  *SPOT
	depth int
	win   []float64
	sum   float64
	pos   int
	full  bool
}

// NewDSPOT returns a drift-aware SPOT with the given trailing window depth,
// under the exact refit policy; use SetPolicy before Fit to amortize the
// tail refits.
func NewDSPOT(level, q float64, depth int) *DSPOT {
	if depth < 1 {
		depth = 1
	}
	return &DSPOT{spot: NewSPOT(level, q), depth: depth, win: make([]float64, depth)}
}

// SetPolicy configures the wrapped tail model's refit schedule; call it
// before Fit (the policy also sizes the excess ring allocated there).
func (d *DSPOT) SetPolicy(p RefitPolicy) { d.spot.Policy = p }

// Policy returns the wrapped tail model's refit schedule.
func (d *DSPOT) Policy() RefitPolicy { return d.spot.Policy }

// RefitStats returns the wrapped tail model's cumulative maintenance
// counters.
func (d *DSPOT) RefitStats() RefitStats { return d.spot.RefitStats() }

// Fit calibrates on an initial batch; the first depth values seed the
// trailing window and the rest calibrate the tail model.
func (d *DSPOT) Fit(init []float64) error {
	if len(init) <= d.depth+8 {
		return fmt.Errorf("evt: DSPOT needs more than depth+8=%d calibration points, got %d", d.depth+8, len(init))
	}
	for _, v := range init[:d.depth] {
		d.push(v)
	}
	resid := make([]float64, 0, len(init)-d.depth)
	for _, v := range init[d.depth:] {
		resid = append(resid, v-d.mean())
		d.push(v)
	}
	return d.spot.Fit(resid)
}

func (d *DSPOT) push(v float64) {
	if d.full {
		d.sum -= d.win[d.pos]
	}
	d.win[d.pos] = v
	d.sum += v
	d.pos++
	if d.pos == d.depth {
		d.pos = 0
		d.full = true
	}
}

func (d *DSPOT) mean() float64 {
	n := d.depth
	if !d.full {
		n = d.pos
		if n == 0 {
			return 0
		}
	}
	return d.sum / float64(n)
}

// Threshold returns the current residual-space alarm threshold.
func (d *DSPOT) Threshold() float64 { return d.spot.Threshold() }

// Baseline returns the current drift-corrected baseline (the trailing
// window mean); Baseline()+Threshold() is the effective alarm level in
// raw score space.
func (d *DSPOT) Baseline() float64 { return d.mean() }

// DSPOTState is the serializable runtime state of a DSPOT detector (the
// wrapped SPOT tail model plus the drift window).
type DSPOTState struct {
	SPOT  SPOTState `json:"spot"`
	Depth int       `json:"depth"`
	Win   []float64 `json:"win"`
	Sum   float64   `json:"sum"`
	Pos   int       `json:"pos"`
	Full  bool      `json:"full"`
}

// State captures the detector's current runtime state.
func (d *DSPOT) State() DSPOTState {
	return DSPOTState{
		SPOT: d.spot.State(), Depth: d.depth,
		Win: append([]float64(nil), d.win...), Sum: d.sum, Pos: d.pos, Full: d.full,
	}
}

// SetState replaces the detector's runtime state with a snapshot taken by
// State. The snapshot's drift-window depth must match the detector's.
func (d *DSPOT) SetState(st DSPOTState) error {
	if st.Depth != d.depth || len(st.Win) != d.depth {
		return fmt.Errorf("evt: DSPOT state depth %d (win %d), detector depth %d", st.Depth, len(st.Win), d.depth)
	}
	d.spot.SetState(st.SPOT)
	copy(d.win, st.Win)
	d.sum, d.pos, d.full = st.Sum, st.Pos, st.Full
	return nil
}

// Step consumes one observation and reports whether it is anomalous
// relative to the drift-corrected baseline. Non-anomalous observations
// update the trailing window; anomalies do not (so an alarm does not
// poison the baseline). Stepping before Fit returns ErrNotReady.
func (d *DSPOT) Step(x float64) (bool, error) {
	resid := x - d.mean()
	fired, err := d.spot.Step(resid)
	if err != nil {
		return false, err
	}
	if fired {
		return true, nil
	}
	d.push(x)
	return false, nil
}
