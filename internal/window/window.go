// Package window provides sliding-window utilities over multivariate time
// series stored as [variate][time] slices: instance extraction with long
// and short windows (the Xt / Yt pairs of the paper's §III-A), strides, and
// per-variate min-max normalization fitted on training data.
package window

import (
	"fmt"

	"aero/internal/stats"
)

// Instance identifies one sliding-window training/inference instance: the
// window covers timestamps [End-W+1, End] and the short window its last ω
// steps.
type Instance struct {
	// End is the index of the window's last timestamp in the full series.
	End int
}

// Indices returns the window ends for a series of length n using windows of
// length w, stepping by stride. The first usable end is w-1. A stride < 1
// is treated as 1.
func Indices(n, w, stride int) []Instance {
	if stride < 1 {
		stride = 1
	}
	if n < w {
		return nil
	}
	out := make([]Instance, 0, (n-w)/stride+1)
	for end := w - 1; end < n; end += stride {
		out = append(out, Instance{End: end})
	}
	// Always include the final window so online scoring reaches the series
	// tail even when stride does not divide the range.
	if last := n - 1; len(out) > 0 && out[len(out)-1].End != last {
		out = append(out, Instance{End: last})
	}
	return out
}

// Slice returns series[end-w+1 : end+1]; it panics if the window underflows.
func Slice(series []float64, end, w int) []float64 {
	lo := end - w + 1
	if lo < 0 || end >= len(series) {
		panic(fmt.Sprintf("window: [%d, %d] out of range (len %d)", lo, end, len(series)))
	}
	return series[lo : end+1]
}

// Normalizer maps raw magnitudes onto [0, 1] per variate using train-set
// bounds (required because the temporal module's output layer is a sigmoid).
type Normalizer struct {
	Lo, Hi []float64
}

// FitNormalizer computes per-variate bounds from the training series, with
// a small margin so test values slightly outside the train range do not
// saturate.
func FitNormalizer(train [][]float64) *Normalizer {
	n := &Normalizer{Lo: make([]float64, len(train)), Hi: make([]float64, len(train))}
	for i, series := range train {
		lo, hi := stats.Min(series), stats.Max(series)
		margin := 0.05 * (hi - lo)
		if margin == 0 {
			margin = 1e-3
		}
		n.Lo[i] = lo - margin
		n.Hi[i] = hi + margin
	}
	return n
}

// Transform returns normalized copies of the given series.
func (n *Normalizer) Transform(data [][]float64) [][]float64 {
	out := make([][]float64, len(data))
	for i, series := range data {
		out[i] = stats.MinMaxScale(series, n.Lo[i], n.Hi[i])
	}
	return out
}

// TransformValue normalizes a single value of variate i.
func (n *Normalizer) TransformValue(i int, v float64) float64 {
	lo, hi := n.Lo[i], n.Hi[i]
	if hi <= lo {
		return 0.5
	}
	u := (v - lo) / (hi - lo)
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	return u
}
