package window

import (
	"testing"
	"testing/quick"
)

func TestIndicesStride1CoversEveryEnd(t *testing.T) {
	idx := Indices(10, 4, 1)
	if len(idx) != 7 {
		t.Fatalf("got %d windows", len(idx))
	}
	if idx[0].End != 3 || idx[len(idx)-1].End != 9 {
		t.Fatalf("ends %v..%v", idx[0].End, idx[len(idx)-1].End)
	}
}

func TestIndicesAlwaysIncludeLast(t *testing.T) {
	f := func(seed int64) bool {
		n := 10 + int(seed%200+200)%200
		w := 3 + int(seed%7+7)%7
		stride := 1 + int(seed%9+9)%9
		idx := Indices(n, w, stride)
		if len(idx) == 0 {
			return n < w
		}
		return idx[len(idx)-1].End == n-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndicesShortSeries(t *testing.T) {
	if Indices(3, 5, 1) != nil {
		t.Fatal("series shorter than window must yield no instances")
	}
}

func TestIndicesZeroStride(t *testing.T) {
	idx := Indices(6, 3, 0)
	if len(idx) != 4 {
		t.Fatalf("stride<1 should behave as 1, got %d", len(idx))
	}
}

func TestSlice(t *testing.T) {
	s := []float64{0, 1, 2, 3, 4}
	got := Slice(s, 3, 3)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("slice %v", got)
	}
}

func TestSlicePanicsOnUnderflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Slice([]float64{1, 2, 3}, 1, 3)
}

func TestNormalizerMapsTrainIntoUnitInterval(t *testing.T) {
	train := [][]float64{{-2, 0, 2}, {5, 5, 5}}
	n := FitNormalizer(train)
	out := n.Transform(train)
	for v := range out {
		for _, x := range out[v] {
			if x < 0 || x > 1 {
				t.Fatalf("normalized value %v outside [0,1]", x)
			}
		}
	}
	// Constant series must not blow up.
	if got := n.TransformValue(1, 5); got <= 0 || got >= 1 {
		t.Fatalf("constant series transform %v", got)
	}
}

func TestNormalizerClipsOutOfRange(t *testing.T) {
	n := FitNormalizer([][]float64{{0, 1}})
	if n.TransformValue(0, 100) != 1 {
		t.Fatal("above range must clip to 1")
	}
	if n.TransformValue(0, -100) != 0 {
		t.Fatal("below range must clip to 0")
	}
}

func TestNormalizerMarginKeepsStrictInterior(t *testing.T) {
	n := FitNormalizer([][]float64{{0, 10}})
	lo := n.TransformValue(0, 0)
	hi := n.TransformValue(0, 10)
	if lo <= 0 || hi >= 1 {
		t.Fatalf("train extremes should be strictly inside (0,1): %v %v", lo, hi)
	}
}
