// Quickstart: generate a small synthetic star field, train AERO, and
// evaluate detection quality — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"aero"
)

func main() {
	// A small field: 8 stars over 600 samples, 5 of them exposed to
	// concurrent noise (clouds, dawn, drift), two injected celestial
	// events in the test split.
	gen := aero.SyntheticConfig{
		Name: "quickstart", N: 8, TrainLen: 600, TestLen: 600,
		NoiseVariates: 5, AnomalySegments: 2, NoisePct: 2.5,
		VariableFrac: 0.5, Seed: 42,
	}
	d := gen.Generate()
	st := aero.ComputeStats(d)
	fmt.Printf("dataset: %d stars, %d/%d samples, %.2f%% anomalous, %.2f%% concurrent noise\n",
		st.Variates, st.TrainLen, st.TestLen, st.AnomalyPct, st.NoisePct)

	// Train the two-stage model. SmallConfig keeps this CPU-friendly;
	// DefaultConfig reproduces the paper's hyperparameters.
	cfg := aero.SmallConfig()
	model, err := aero.New(cfg, d.Train.N())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training (stage 1: per-star Transformer; stage 2: window-wise GCN)...")
	if err := model.Fit(d.Train); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POT threshold calibrated at %.4f\n", model.Threshold())

	// Detect on the test split and evaluate with point adjustment.
	pred, err := model.Detect(d.Test)
	if err != nil {
		log.Fatal(err)
	}
	var c aero.Confusion
	for v := range pred {
		c.Add(aero.EvaluateAdjusted(pred[v], d.Test.Labels[v]))
	}
	fmt.Printf("precision %.1f%%  recall %.1f%%  F1 %.1f%%\n",
		100*c.Precision(), 100*c.Recall(), 100*c.F1())
}
