// Graphviz: visualize the window-wise learned graph structure (the
// paper's Fig. 8) as terminal heatmaps — during a concurrent-noise event
// the affected stars light up as a block, while quiet windows stay dark.
package main

import (
	"fmt"
	"log"

	"aero"
)

func main() {
	gen := aero.SyntheticConfig{
		Name: "graphviz", N: 12, TrainLen: 600, TestLen: 600,
		NoiseVariates: 8, AnomalySegments: 1, NoisePct: 3,
		VariableFrac: 0.5, Seed: 31,
	}
	d := gen.Generate()
	model, err := aero.New(aero.SmallConfig(), d.Train.N())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training AERO...")
	if err := model.Fit(d.Train); err != nil {
		log.Fatal(err)
	}

	W := model.Config().LongWindow
	noisy, quiet := -1, -1
	for t := W; t < d.Test.Len(); t++ {
		count := 0
		for v := 0; v < d.Test.N(); v++ {
			if d.Test.NoiseMask[v][t] {
				count++
			}
		}
		if count >= 3 && noisy < 0 {
			noisy = t
		}
		if count == 0 && quiet < 0 && t > W+50 {
			quiet = t
		}
		if noisy >= 0 && quiet >= 0 {
			break
		}
	}

	for _, tc := range []struct {
		name string
		end  int
	}{{"concurrent-noise window", noisy}, {"quiet window", quiet}} {
		if tc.end < 0 {
			continue
		}
		g, err := model.GraphAt(d.Test, tc.end)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nlearned graph during %s (t=%d):\n", tc.name, tc.end)
		shades := " .:-=+*#%@"
		for i := 0; i < g.Rows; i++ {
			fmt.Print("  ")
			for j := 0; j < g.Cols; j++ {
				idx := int(g.At(i, j) * float64(len(shades)-1))
				if idx < 0 {
					idx = 0
				}
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
				fmt.Printf("%c ", shades[idx])
			}
			fmt.Println()
		}
		// Mark which stars the noise mask says were affected.
		fmt.Print("  affected: ")
		for v := 0; v < d.Test.N(); v++ {
			if d.Test.NoiseMask[v][tc.end] {
				fmt.Printf("%d ", v)
			}
		}
		fmt.Println()
	}
}
