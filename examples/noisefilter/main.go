// Noise filter: the paper's headline claim in one program. On a
// noise-heavy field, a univariate extreme-value detector (SPOT) fires on
// every cloud; AERO's concurrent-noise module filters those false alarms
// while keeping the real event.
package main

import (
	"fmt"
	"log"

	"aero"
)

func main() {
	// Heavy concurrent noise (the SyntheticLow regime: A/N is low).
	gen := aero.SyntheticConfig{
		Name: "noisy", N: 8, TrainLen: 700, TestLen: 700,
		NoiseVariates: 6, AnomalySegments: 1, NoisePct: 5,
		VariableFrac: 0.5, Seed: 13,
	}
	d := gen.Generate()
	st := aero.ComputeStats(d)
	fmt.Printf("noise-heavy field: %.2f%% of points under concurrent noise, %.2f%% true anomalies (A/N %.3f)\n\n",
		st.NoisePct, st.AnomalyPct, st.AnomToNoise)

	// --- Univariate EVT baseline (SPOT) ---------------------------------
	spot := aero.Baselines(aero.SmallBaselineConfig())[2] // TM, SR, SPOT, ...
	if spot.Name() != "SPOT" {
		log.Fatalf("unexpected baseline order: %s", spot.Name())
	}
	if err := spot.Fit(d.Train); err != nil {
		log.Fatal(err)
	}
	spotC := evaluate(spot, d)

	// --- AERO ------------------------------------------------------------
	model, err := aero.New(aero.SmallConfig(), d.Train.N())
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Fit(d.Train); err != nil {
		log.Fatal(err)
	}
	pred, err := model.Detect(d.Test)
	if err != nil {
		log.Fatal(err)
	}
	var aeroC aero.Confusion
	for v := range pred {
		aeroC.Add(aero.EvaluateAdjusted(pred[v], d.Test.Labels[v]))
	}

	fmt.Printf("%-8s %10s %10s %10s %12s\n", "method", "precision", "recall", "F1", "false alarms")
	fmt.Printf("%-8s %9.1f%% %9.1f%% %9.1f%% %12d\n", "SPOT",
		100*spotC.Precision(), 100*spotC.Recall(), 100*spotC.F1(), spotC.FP)
	fmt.Printf("%-8s %9.1f%% %9.1f%% %9.1f%% %12d\n", "AERO",
		100*aeroC.Precision(), 100*aeroC.Recall(), 100*aeroC.F1(), aeroC.FP)
	if aeroC.FP < spotC.FP {
		fmt.Printf("\nAERO suppressed %d of SPOT's %d false-positive points (%.0f%%)\n",
			spotC.FP-aeroC.FP, spotC.FP, 100*float64(spotC.FP-aeroC.FP)/float64(spotC.FP))
	}
}

// evaluate runs the shared POT + point-adjust protocol for a baseline.
func evaluate(det aero.BaselineDetector, d *aero.Dataset) aero.Confusion {
	trainScores, err := det.Scores(d.Train)
	if err != nil {
		log.Fatal(err)
	}
	var pool []float64
	for _, row := range trainScores {
		pool = append(pool, row...)
	}
	thr, err := aero.POTThreshold(pool, 0.99, 0.001)
	if err != nil {
		log.Printf("POT fallback: %v", err)
	}
	testScores, err := det.Scores(d.Test)
	if err != nil {
		log.Fatal(err)
	}
	var c aero.Confusion
	for v := range testScores {
		pred := make([]bool, len(testScores[v]))
		for t, s := range testScores[v] {
			pred[t] = s >= thr
		}
		c.Add(aero.EvaluateAdjusted(pred, d.Test.Labels[v]))
	}
	return c
}
