// GWAC stream: train on a simulated Ground-based Wide Angle Camera night,
// then replay the test night as an online stream, printing alarms as each
// new frame's magnitudes arrive — the deployment mode of §III-F.
package main

import (
	"fmt"
	"log"

	"aero"
)

func main() {
	// A compact GWAC field with irregular 15s cadence. The full-size
	// presets (aero.AstrosetMiddle etc.) use the paper's Table I shapes.
	gen := aero.GWACConfig{
		Name: "gwac-night", N: 10, TrainLen: 900, TestLen: 600,
		AnomalySegments: 2, AnomalyLen: 50, NoisePct: 4,
		CadenceSec: 15, JitterSec: 2, GapProb: 0.002, Seed: 7,
	}
	d := gen.Generate()
	fmt.Printf("field of %d stars; training on %d archived frames\n", d.Train.N(), d.Train.Len())

	model, err := aero.New(aero.SmallConfig(), d.Train.N())
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Fit(d.Train); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model ready (threshold %.4f); replaying the observation night...\n\n", model.Threshold())

	// Online mode: frames arrive one at a time; the stream detector keeps
	// a bounded window and scores each frame as it lands (Algorithm 2).
	stream, err := aero.NewStreamDetector(model)
	if err != nil {
		log.Fatal(err)
	}
	timeIndex := make(map[float64]int, d.Test.Len())
	for t, tv := range d.Test.Time {
		timeIndex[tv] = t
	}
	frame := aero.Frame{Magnitudes: make([]float64, d.Test.N())}
	active := make(map[int]bool) // star -> currently alarming
	raised := 0
	for t := 0; t < d.Test.Len(); t++ {
		frame.Time = d.Test.Time[t]
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][t]
		}
		alarms, err := stream.Push(frame)
		if err != nil {
			log.Fatal(err)
		}
		firing := make(map[int]bool, len(alarms))
		for _, a := range alarms {
			firing[a.Variate] = true
			if active[a.Variate] {
				continue // alarm already open for this star
			}
			label := "candidate event"
			idx := timeIndex[a.Time]
			if d.Test.Labels[a.Variate][idx] {
				label = "TRUE EVENT"
			} else if d.Test.NoiseMask[a.Variate][idx] {
				label = "noise leak"
			}
			fmt.Printf("t=%7.0fs  star %2d  score %.4f  ALARM RAISED (%s)\n",
				a.Time, a.Variate, a.Score, label)
			active[a.Variate] = true
			raised++
		}
		for v := range active {
			if !firing[v] {
				delete(active, v)
			}
		}
	}
	fmt.Printf("\nnight replay complete: %d alarm(s) raised across %d frames\n", raised, d.Test.Len())
}
