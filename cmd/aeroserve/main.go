// Command aeroserve replays a CSV dataset as a simulated live survey feed
// over many concurrent tenants, served by the sharded streaming engine —
// the deployment shape of the paper's §III-F online mode at GWAC scale.
//
// Usage:
//
//	aerogen -out data -dataset SyntheticMiddle
//	aeroserve -dir data -dataset SyntheticMiddle -tenants 16 -rate 0
//	aeroserve -dir data -dataset SyntheticMiddle -checkpoint ckpt \
//	    -retrain-every 30s -rate 4
//
// Each tenant simulates one telescope field observing the test split; the
// engine shards the tenants, scores frames on a worker pool, and streams
// alarms to stdout while periodic per-shard stats go to stderr.
//
// With -checkpoint the server keeps a model registry at the given
// directory: the newest published model is used instead of retraining on
// startup, warm detector states checkpointed by a previous run are
// restored (tenants resume with a full window instead of re-warming), and
// on shutdown every tenant's state is checkpointed back. With
// -retrain-every the model is refit in the background on that interval
// (each round with a fresh logged seed), published to the registry, and
// hot-swapped into every serving tenant with zero dropped frames.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"aero"
)

// truncate returns the first n frames of a series (the series itself when
// n is zero or out of range), letting quick simulations skip the cost of
// training and replaying a full archived night.
func truncate(s *aero.Series, n int) *aero.Series {
	if n <= 0 || n >= s.Len() {
		return s
	}
	out := &aero.Series{
		Data:      make([][]float64, s.N()),
		Time:      s.Time[:n],
		Labels:    make([][]bool, s.N()),
		NoiseMask: make([][]bool, s.N()),
	}
	for v := 0; v < s.N(); v++ {
		out.Data[v] = s.Data[v][:n]
		out.Labels[v] = s.Labels[v][:n]
		out.NoiseMask[v] = s.NoiseMask[v][:n]
	}
	return out
}

func main() {
	dir := flag.String("dir", "data", "dataset directory (as written by aerogen)")
	name := flag.String("dataset", "SyntheticMiddle", "dataset name")
	config := flag.String("config", "small", "model configuration: small or paper")
	load := flag.String("load", "", "load a saved model instead of training")
	checkpoint := flag.String("checkpoint", "", "model registry directory: reuse the newest published model, restore warm detector states, checkpoint on shutdown")
	retrainEvery := flag.Duration("retrain-every", 0, "background retrain + hot-swap interval (0 = disabled)")
	tenants := flag.Int("tenants", 8, "number of simulated telescope fields")
	rate := flag.Float64("rate", 0, "frames per second per tenant (0 = as fast as possible)")
	shards := flag.Int("shards", 0, "engine shards (0 = default)")
	workers := flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = default)")
	statsEvery := flag.Duration("stats", 2*time.Second, "stats print interval")
	quiet := flag.Bool("quiet", false, "suppress per-alarm output")
	trainLen := flag.Int("trainlen", 0, "truncate the training split to this many frames (0 = all)")
	testLen := flag.Int("testlen", 0, "truncate the replayed feed to this many frames (0 = all)")
	flag.Parse()

	d, err := aero.ReadDataset(*dir, *name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "load dataset: %v\n", err)
		os.Exit(1)
	}
	d.Train = truncate(d.Train, *trainLen)
	d.Test = truncate(d.Test, *testLen)

	// The registry is the model's home when -checkpoint is set; a retrain
	// schedule without one still needs somewhere to publish, so it falls
	// back to a throwaway directory.
	var reg *aero.ModelRegistry
	if *checkpoint != "" {
		if reg, err = aero.OpenRegistry(*checkpoint); err != nil {
			fmt.Fprintf(os.Stderr, "open registry: %v\n", err)
			os.Exit(1)
		}
	} else if *retrainEvery > 0 {
		tmp, terr := os.MkdirTemp("", "aero-registry-")
		if terr != nil {
			fmt.Fprintf(os.Stderr, "temp registry: %v\n", terr)
			os.Exit(1)
		}
		defer os.RemoveAll(tmp)
		if reg, err = aero.OpenRegistry(tmp); err != nil {
			fmt.Fprintf(os.Stderr, "open registry: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "no -checkpoint given; publishing retrains to throwaway %s\n", tmp)
	}

	cfg := aero.SmallConfig()
	if *config == "paper" {
		cfg = aero.DefaultConfig()
	}
	var model *aero.Model
	switch {
	case *load != "":
		if model, err = aero.Load(*load); err != nil {
			fmt.Fprintf(os.Stderr, "load model: %v\n", err)
			os.Exit(1)
		}
	case reg != nil:
		m, v, lerr := reg.Latest(*name)
		switch {
		case lerr == nil:
			model = m
			fmt.Fprintf(os.Stderr, "using published model %s/%s from the registry\n", *name, v)
		case errors.Is(lerr, aero.ErrNoVersions):
			// First run against this checkpoint: train below.
		default:
			fmt.Fprintf(os.Stderr, "registry %s: %v; retraining from scratch\n", reg.Dir(), lerr)
		}
	}
	if model == nil {
		if model, err = aero.New(cfg, d.Train.N()); err != nil {
			fmt.Fprintf(os.Stderr, "model: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "training on %s (%d stars, %d samples)...\n", *name, d.Train.N(), d.Train.Len())
		if err := model.Fit(d.Train); err != nil {
			fmt.Fprintf(os.Stderr, "fit: %v\n", err)
			os.Exit(1)
		}
		if reg != nil {
			if v, perr := reg.Publish(*name, model); perr != nil {
				fmt.Fprintf(os.Stderr, "publish: %v\n", perr)
			} else {
				fmt.Fprintf(os.Stderr, "published %s/%s\n", *name, v)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "model ready: POT threshold %.4f\n", model.Threshold())

	eng := aero.NewEngine(aero.EngineConfig{Shards: *shards, Workers: *workers, QueueDepth: *queue})
	subs := make([]*aero.Subscription, *tenants)
	for i := range subs {
		id := fmt.Sprintf("field-%03d", i)
		if subs[i], err = eng.Subscribe(id, model); err != nil {
			fmt.Fprintf(os.Stderr, "subscribe %s: %v\n", id, err)
			os.Exit(1)
		}
	}
	// Warm restarts: restore checkpointed detector states so tenants
	// resume with a full window instead of re-warming from a cold ring.
	if reg != nil {
		restored := 0
		for _, sub := range subs {
			blob, lerr := reg.LoadState(sub.ID)
			if lerr != nil {
				continue // no checkpoint for this tenant
			}
			if rerr := sub.RestoreState(blob); rerr != nil {
				fmt.Fprintf(os.Stderr, "restore %s: %v\n", sub.ID, rerr)
				continue
			}
			restored++
		}
		if restored > 0 {
			fmt.Fprintf(os.Stderr, "restored %d warm detector states from %s\n", restored, reg.Dir())
		}
	}
	fmt.Fprintf(os.Stderr, "engine up: %d tenants × %d frames each\n", *tenants, d.Test.Len())

	// Background lifecycle: retrain on the configured interval and
	// hot-swap every tenant on publish.
	var retrains, hotSwaps atomic.Uint64
	var retrainer *aero.Retrainer
	if *retrainEvery > 0 {
		base := model.Config()
		retrainer, err = aero.NewRetrainer(aero.RetrainerConfig{
			Registry: reg,
			Source:   func(string) (*aero.Series, error) { return d.Train, nil },
			Config: func(_ string, round int) aero.Config {
				c := base
				c.Seed = base.Seed + int64(round) // reproducible from the logged seed
				return c
			},
			Interval: *retrainEvery,
			Logf:     func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
			OnResult: func(res aero.RetrainResult) {
				if res.Err != nil {
					fmt.Fprintf(os.Stderr, "retrain: %v\n", res.Err)
					return
				}
				retrains.Add(1)
				n := 0
				for _, sub := range subs {
					if serr := sub.Swap(res.Model); serr != nil {
						fmt.Fprintf(os.Stderr, "swap %s: %v\n", sub.ID, serr)
						continue
					}
					n++
				}
				hotSwaps.Add(uint64(n))
				fmt.Fprintf(os.Stderr, "hot-swapped %s/%s (seed %d) into %d tenants mid-stream\n",
					*name, res.Version, res.Seed, n)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "retrainer: %v\n", err)
			os.Exit(1)
		}
		retrainer.Register(*name)
		retrainer.Start()
	}

	// Alarm and error consumers.
	var consumers sync.WaitGroup
	var totalAlarms int
	consumers.Add(1)
	go func() {
		defer consumers.Done()
		for a := range eng.Alarms() {
			totalAlarms++
			if !*quiet {
				fmt.Printf("ALARM %s star %d t=%.0fs score %.4f\n", a.Sub, a.Variate, a.Time, a.Score)
			}
		}
	}()
	consumers.Add(1)
	go func() {
		defer consumers.Done()
		for fe := range eng.Errors() {
			fmt.Fprintf(os.Stderr, "frame error %s t=%.0fs: %v\n", fe.Sub, fe.Time, fe.Err)
		}
	}()

	// Periodic stats.
	statsDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(*statsEvery)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t := eng.Totals()
				fmt.Fprintf(os.Stderr, "stats: %d frames scored (%.0f/s), %d alarms, %d errors, %d queued\n",
					t.Frames, t.FramesPerSec, t.Alarms, t.Errors, t.QueueDepth)
			case <-statsDone:
				return
			}
		}
	}()

	// Feeders: one goroutine per tenant replaying the test split.
	start := time.Now()
	var feeders sync.WaitGroup
	for i := range subs {
		feeders.Add(1)
		go func(i int) {
			defer feeders.Done()
			id := subs[i].ID
			frame := aero.Frame{Magnitudes: make([]float64, d.Test.N())}
			// A restored tenant already has a time cursor; shift the replay
			// so it continues strictly after the checkpointed feed.
			offset := 0.0
			if last, ok := subs[i].LastTime(); ok && last >= d.Test.Time[0] {
				step := 1.0
				if d.Test.Len() > 1 {
					step = d.Test.Time[1] - d.Test.Time[0]
				}
				offset = last - d.Test.Time[0] + step
			}
			var tick *time.Ticker
			if *rate > 0 {
				tick = time.NewTicker(time.Duration(float64(time.Second) / *rate))
				defer tick.Stop()
			}
			for t := 0; t < d.Test.Len(); t++ {
				if tick != nil {
					<-tick.C
				}
				frame.Time = d.Test.Time[t] + offset
				for v := 0; v < d.Test.N(); v++ {
					frame.Magnitudes[v] = d.Test.Data[v][t]
				}
				if err := eng.Ingest(id, frame); err != nil {
					fmt.Fprintf(os.Stderr, "ingest %s: %v\n", id, err)
					return
				}
			}
		}(i)
	}
	feeders.Wait()
	if retrainer != nil {
		retrainer.Close() // finish any in-flight retrain (its swap still lands)
	}
	eng.Flush()
	elapsed := time.Since(start)
	for _, s := range eng.Stats() {
		if s.Subscriptions == 0 && s.Frames == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "shard %d: %d tenants, %d frames, %d alarms, %d errors\n",
			s.Shard, s.Subscriptions, s.Frames, s.Alarms, s.Errors)
	}
	close(statsDone)
	eng.Close()
	consumers.Wait()

	// Checkpoint warm detector states so the next run resumes mid-window.
	if reg != nil {
		saved := 0
		for _, sub := range subs {
			blob, serr := sub.SnapshotState()
			if serr != nil {
				fmt.Fprintf(os.Stderr, "snapshot %s: %v\n", sub.ID, serr)
				continue
			}
			if serr := reg.SaveState(sub.ID, blob); serr != nil {
				fmt.Fprintf(os.Stderr, "checkpoint %s: %v\n", sub.ID, serr)
				continue
			}
			saved++
		}
		fmt.Fprintf(os.Stderr, "checkpointed %d warm detector states to %s\n", saved, reg.Dir())
	}

	total := eng.Totals()
	fmt.Fprintf(os.Stderr, "done: %d frames over %d tenants in %s (%.0f frames/s), %d alarms, %d retrains, %d hot-swaps\n",
		total.Frames, *tenants, elapsed.Round(time.Millisecond), float64(total.Frames)/elapsed.Seconds(),
		totalAlarms, retrains.Load(), hotSwaps.Load())
}
