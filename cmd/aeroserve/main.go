// Command aeroserve replays a CSV dataset as a simulated live survey feed
// over many concurrent tenants, served by the sharded streaming engine —
// the deployment shape of the paper's §III-F online mode at GWAC scale.
//
// Usage:
//
//	aerogen -out data -dataset SyntheticMiddle
//	aeroserve -dir data -dataset SyntheticMiddle -tenants 16 -rate 0
//	aeroserve -dir data -dataset SyntheticMiddle -backend sr -tenants 64
//	aeroserve -dir data -dataset SyntheticMiddle -checkpoint ckpt \
//	    -retrain-every 30s -rate 4
//	aeroserve -dir data -dataset SyntheticMiddle -backend fluxev \
//	    -listen :7071 -http :7072 -checkpoint ckpt
//
// Each tenant simulates one telescope field observing the test split; the
// engine shards the tenants, scores frames on a worker pool, and streams
// alarms to stdout while periodic per-shard stats go to stderr.
//
// -backend selects the serving detector kind: "aero" (the paper's
// two-stage model) or one of the cheap streaming baseline adapters
// ("sr", "tm", "fluxev") that keep up at survey rates. -alarm selects
// the alarming stage: "static" thresholds on the kind's fitted POT
// threshold, "dspot" wraps the backend in per-variate streaming DSPOT
// (drift-corrected EVT tails that keep adapting online — the paper's
// thresholding protocol, live). The default "auto" serves AERO with its
// calibrated static threshold and every other kind with DSPOT.
//
// With -triage the raw alarm flood is triaged into a short, ranked
// incident feed before it reaches stdout: a stable Bloom filter dedups
// repeat alarms per (tenant, star, time-bucket), surviving alarms
// coalesce into per-source episodes, episodes whose onsets coincide
// across tenants correlate into candidate incidents (the astronomical
// cross-match — a real transient hits many fields, an artifact hits
// one), and incidents are ranked by cluster breadth × peak score.
// Per-alarm output is replaced by INCIDENT lines; the final stats report
// the alarm→incident reduction ratio and the strongest lead-lag
// orderings between fields. Correlation clusters episode onsets against
// the alarm stream's watermark, so it assumes the roughly synchronized
// field feeds a survey camera produces — pass -rate to keep the
// simulated tenants in lockstep instead of letting each replay sprint
// ahead independently. With -checkpoint the triage state (dedup filter,
// mid-flight episodes, pending incidents) is checkpointed and restored
// alongside the detector states, so a restart resumes episodes
// mid-flight.
//
// With -checkpoint the server keeps an artifact registry at the given
// directory: the newest published artifact of the selected kind is used
// instead of retraining on startup, warm backend states checkpointed by
// a previous run are restored (tenants resume with a full window instead
// of re-warming), and on shutdown every tenant's state is checkpointed
// back. With -retrain-every the backend is refit in the background on
// that interval (AERO rounds with a fresh logged seed), published to the
// registry, and hot-swapped into every serving tenant with zero dropped
// frames.
//
// Fault containment (see internal/engine and DESIGN.md): every tenant
// push runs under a panic guard and a per-tenant health state machine —
// consecutive faults degrade then quarantine a tenant, quarantined
// tenants fail over to a warm fallback backend (-fallback KIND) and
// recover through probation probes on a jittered frame-count backoff.
// -hygiene turns on the frame-validation stage (drop or repair NaN/Inf
// and stale-time frames) ahead of every backend. -chaos N wraps the
// first N tenants in the deterministic fault-injection harness
// (internal/faultinject) — seeded panics, errors, NaN scores, latency
// spikes — to soak-test the containment layer live; the stderr stats
// line then reports tenant health states, fallback service, and
// injection counters.
//
// With -listen and/or -http the process becomes a network ingest server
// instead of a replayer: -listen serves the compact binary frame
// protocol (credit-based flow control sized to engine queue headroom —
// see internal/ingest and cmd/aeroload for the matching client), -http
// serves the JSON-lines /ingest interop endpoint plus /stats and
// /healthz. SIGINT/SIGTERM drain losslessly (every accepted frame
// scored and checkpointed before clients are told what to release);
// SIGUSR2 additionally hands the listening socket to a re-exec'd
// successor for a zero-downtime restart — drained clients reconnect and
// resend their unacknowledged suffix, resuming mid-episode.
//
// In replay mode SIGINT/SIGTERM stop the feed at the next frame and run
// the normal shutdown path, so an interrupted replay still checkpoints
// every warm detector and the mid-flight triage state.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"aero"
)

// truncate returns the first n frames of a series (the series itself when
// n is zero or out of range), letting quick simulations skip the cost of
// training and replaying a full archived night.
func truncate(s *aero.Series, n int) *aero.Series {
	if n <= 0 || n >= s.Len() {
		return s
	}
	out := &aero.Series{
		Data:      make([][]float64, s.N()),
		Time:      s.Time[:n],
		Labels:    make([][]bool, s.N()),
		NoiseMask: make([][]bool, s.N()),
	}
	for v := 0; v < s.N(); v++ {
		out.Data[v] = s.Data[v][:n]
		out.Labels[v] = s.Labels[v][:n]
		out.NoiseMask[v] = s.NoiseMask[v][:n]
	}
	return out
}

func main() {
	dir := flag.String("dir", "data", "dataset directory (as written by aerogen)")
	name := flag.String("dataset", "SyntheticMiddle", "dataset name")
	config := flag.String("config", "small", "model configuration: small or paper")
	kindFlag := flag.String("backend", "aero", fmt.Sprintf("serving backend kind: %v", aero.BackendKinds()))
	alarmFlag := flag.String("alarm", "auto", "alarming stage: auto, static (fitted POT threshold) or dspot (adaptive drift-corrected EVT)")
	dspotDepth := flag.Int("dspot-depth", 20, "DSPOT trailing drift-window depth")
	dspotEvery := flag.Int("dspot-refit-every", 0, "refit the DSPOT tail every K exceedances (0 = amortized default of 128, 1 = exact refit per exceedance)")
	dspotDrift := flag.Float64("dspot-drift-tol", -1, "relative tail-mean drift that forces an early DSPOT refit (<0 = default 0.2, 0 = drift trigger off)")
	load := flag.String("load", "", "load a saved model instead of training (aero backend only)")
	checkpoint := flag.String("checkpoint", "", "artifact registry directory: reuse the newest published artifact, restore warm backend states, checkpoint on shutdown")
	retrainEvery := flag.Duration("retrain-every", 0, "background retrain + hot-swap interval (0 = disabled)")
	tenants := flag.Int("tenants", 8, "number of simulated telescope fields")
	rate := flag.Float64("rate", 0, "frames per second per tenant (0 = as fast as possible)")
	shards := flag.Int("shards", 0, "engine shards (0 = default)")
	workers := flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = default)")
	statsEvery := flag.Duration("stats", 2*time.Second, "stats print interval")
	quiet := flag.Bool("quiet", false, "suppress per-alarm (and per-incident) output")
	triage := flag.Bool("triage", false, "triage the alarm flood into a ranked incident feed (dedup → episodes → cross-tenant correlation → ranking)")
	triageBucket := flag.Float64("triage-bucket", 0, "triage dedup time-bucket in feed time units (0 = 4 frame periods)")
	triageWindow := flag.Float64("triage-window", 0, "cross-tenant onset correlation window in feed time units (0 = 2 buckets)")
	trainLen := flag.Int("trainlen", 0, "truncate the training split to this many frames (0 = all)")
	testLen := flag.Int("testlen", 0, "truncate the replayed feed to this many frames (0 = all)")
	hygieneFlag := flag.String("hygiene", "off", "frame hygiene ahead of every backend: off, drop (reject NaN/Inf frames), hold (repair by holding last finite value), gap (hold + suppress alarms on repaired variates)")
	fallbackKind := flag.String("fallback", "", "warm fallback backend kind installed per tenant; serves while the primary is quarantined (empty = none)")
	noHealth := flag.Bool("no-health", false, "disable per-tenant fault supervision (panics are still contained)")
	quarantineAfter := flag.Int("quarantine-after", 0, "consecutive faults before a tenant is quarantined (0 = default)")
	backoffFrames := flag.Int("backoff-frames", 0, "base quarantine length in frames before a probation probe (0 = default)")
	probationFrames := flag.Int("probation-frames", 0, "clean probation probes required to recover (0 = default)")
	latencyThresh := flag.Duration("latency-threshold", 0, "per-push latency budget; breaches count as faults (0 = off)")
	chaosN := flag.Int("chaos", 0, "wrap the first N tenants in the deterministic fault-injection harness (panics, errors, NaN scores, latency spikes)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "chaos harness schedule seed (per-tenant seed = seed + tenant index)")
	listenAddr := flag.String("listen", "", "serve the binary frame protocol on this TCP address instead of replaying (clients: aeroload); SIGUSR2 restarts with zero downtime")
	httpAddr := flag.String("http", "", "serve HTTP endpoints on this address: POST /ingest (JSON lines), GET /stats, GET /healthz")
	httpPprof := flag.Bool("http-pprof", false, "mount net/http/pprof under /debug/pprof/ on the -http listener (profile a serving process in place)")
	metricsOn := flag.Bool("metrics", true, "enable the zero-alloc metrics layer: stage latency histograms, queue gauges, per-tenant flight recorder; adds GET /metrics and GET /trace/{tenant} to the -http listener")
	traceDepth := flag.Int("trace-depth", 0, "per-tenant flight-recorder ring depth (0 = default 64 frames)")
	traceSlow := flag.Duration("trace-slow", 0, "flight-recorder slow-frame pin threshold (0 = default 250ms)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		os.Exit(1)
	}

	spec, ok := aero.LookupBackend(*kindFlag)
	if !ok {
		fail("unknown backend %q (have %v)", *kindFlag, aero.BackendKinds())
	}
	hygienePolicy, err := aero.ParseHygienePolicy(*hygieneFlag)
	if err != nil {
		fail("%v (want off, drop, hold or gap)", err)
	}
	var fbSpec aero.BackendSpec
	if *fallbackKind != "" {
		if fbSpec, ok = aero.LookupBackend(*fallbackKind); !ok {
			fail("unknown fallback backend %q (have %v)", *fallbackKind, aero.BackendKinds())
		}
	}
	isAERO := *kindFlag == "aero"
	alarm := *alarmFlag
	if alarm == "auto" {
		if isAERO {
			alarm = "static"
		} else {
			alarm = "dspot"
		}
	}
	if alarm != "static" && alarm != "dspot" {
		fail("unknown alarm mode %q (want auto, static or dspot)", *alarmFlag)
	}
	if *load != "" && !isAERO {
		fail("-load supports the aero backend only; %s artifacts live in the -checkpoint registry", *kindFlag)
	}

	d, err := aero.ReadDataset(*dir, *name)
	if err != nil {
		fail("load dataset: %v", err)
	}
	d.Train = truncate(d.Train, *trainLen)
	d.Test = truncate(d.Test, *testLen)

	// The registry is the artifact's home when -checkpoint is set; a
	// retrain schedule without one still needs somewhere to publish, so it
	// falls back to a throwaway directory.
	var reg *aero.ModelRegistry
	if *checkpoint != "" {
		if reg, err = aero.OpenRegistry(*checkpoint); err != nil {
			fail("open registry: %v", err)
		}
	} else if *retrainEvery > 0 {
		tmp, terr := os.MkdirTemp("", "aero-registry-")
		if terr != nil {
			fail("temp registry: %v", terr)
		}
		defer os.RemoveAll(tmp)
		if reg, err = aero.OpenRegistry(tmp); err != nil {
			fail("open registry: %v", err)
		}
		fmt.Fprintf(os.Stderr, "no -checkpoint given; publishing retrains to throwaway %s\n", tmp)
	}

	opts := aero.SmallBackendOptions()
	if *config == "paper" {
		opts = aero.DefaultBackendOptions()
	}

	// Obtain the serving artifact: a saved model (-load, aero only), the
	// registry's newest entry of the selected kind, or a fresh fit. The
	// aero path additionally keeps the in-memory *Model so thousands of
	// tenants share one set of weights.
	var model *aero.Model
	var artifact []byte
	switch {
	case *load != "":
		if model, err = aero.Load(*load); err != nil {
			fail("load model: %v", err)
		}
	case reg != nil:
		kind, art, v, lerr := reg.LatestArtifact(*name)
		switch {
		case lerr == nil && kind == *kindFlag:
			artifact = art
			fmt.Fprintf(os.Stderr, "using published %s artifact %s/%s from the registry\n", kind, *name, v)
		case lerr == nil:
			fmt.Fprintf(os.Stderr, "registry entry %s/%s is kind %q, serving %q; retraining\n", *name, v, kind, *kindFlag)
		case errors.Is(lerr, aero.ErrNoVersions):
			// First run against this checkpoint: train below.
		default:
			fmt.Fprintf(os.Stderr, "registry %s: %v; retraining from scratch\n", reg.Dir(), lerr)
		}
	}
	if model == nil && artifact == nil {
		fmt.Fprintf(os.Stderr, "training %s backend on %s (%d stars, %d samples)...\n",
			*kindFlag, *name, d.Train.N(), d.Train.Len())
		if artifact, err = spec.Train(d.Train, opts); err != nil {
			fail("train: %v", err)
		}
		if reg != nil {
			if v, perr := reg.PublishArtifact(*name, *kindFlag, artifact); perr != nil {
				fmt.Fprintf(os.Stderr, "publish: %v\n", perr)
			} else {
				fmt.Fprintf(os.Stderr, "published %s/%s (%s)\n", *name, v, *kindFlag)
			}
		}
	}
	if isAERO && model == nil {
		// One shared in-memory model: scoring only reads the weights.
		b, oerr := spec.Open(artifact)
		if oerr != nil {
			fail("open artifact: %v", oerr)
		}
		model = b.(*aero.StreamDetector).Model()
	}
	if isAERO && artifact == nil {
		if artifact, err = model.MarshalBytes(); err != nil {
			fail("marshal model: %v", err)
		}
	}

	// DSPOT calibration: replay the training split through one scratch
	// backend, then every tenant's tail models start from the same fitted
	// state while its window warms on the live feed.
	dcfg := aero.DefaultDSPOTConfig()
	dcfg.Depth = *dspotDepth
	dcfg.Level, dcfg.Q = opts.Stream.Level, opts.Stream.Q
	if *dspotEvery > 0 {
		dcfg.Refit.Every = *dspotEvery
	}
	if *dspotDrift >= 0 {
		dcfg.Refit.DriftTolerance = *dspotDrift
	}
	var calibScores [][]float64
	if alarm == "dspot" {
		scratch, serr := openBackend(spec, isAERO, model, artifact)
		if serr != nil {
			fail("open calibration backend: %v", serr)
		}
		if calibScores, err = aero.StreamBackendScores(scratch, d.Train); err != nil {
			fail("dspot calibration replay: %v", err)
		}
	}

	// mkBackend constructs one tenant's serving backend.
	mkBackend := func() (aero.StreamBackend, error) {
		inner, merr := openBackend(spec, isAERO, model, artifact)
		if merr != nil || alarm != "dspot" {
			return inner, merr
		}
		return aero.NewDSPOTStage(inner, dcfg, calibScores)
	}

	probe, err := mkBackend()
	if err != nil {
		fail("backend: %v", err)
	}
	fmt.Fprintf(os.Stderr, "%s backend ready: alarm mode %s, threshold %.4f\n", probe.Kind(), alarm, probe.Threshold())

	// Warm fallback: one cheap artifact of the fallback kind, opened per
	// tenant. It is kept current from the same frames while the primary is
	// healthy and serves the alarm stream while the primary is quarantined.
	var fbArtifact []byte
	if fbSpec.Kind != "" {
		if *fallbackKind == *kindFlag {
			fbArtifact = artifact
		} else {
			fmt.Fprintf(os.Stderr, "training %s fallback backend...\n", *fallbackKind)
			if fbArtifact, err = fbSpec.Train(d.Train, opts); err != nil {
				fail("train fallback: %v", err)
			}
		}
	}

	// One registry carries every layer's series: engine stage histograms,
	// DSPOT refit counters, ingest flow, triage timing, retrain rounds.
	var mreg *aero.MetricsRegistry
	if *metricsOn {
		mreg = aero.NewMetricsRegistry()
	}

	eng := aero.NewEngine(aero.EngineConfig{
		Shards: *shards, Workers: *workers, QueueDepth: *queue,
		Metrics: mreg,
		Trace:   aero.TraceConfig{Depth: *traceDepth, SlowThreshold: *traceSlow},
		Hygiene: aero.HygieneConfig{Policy: hygienePolicy},
		Health: aero.HealthConfig{
			Disable:          *noHealth,
			QuarantineAfter:  *quarantineAfter,
			BackoffFrames:    *backoffFrames,
			ProbationFrames:  *probationFrames,
			LatencyThreshold: *latencyThresh,
		},
	})
	subs := make([]*aero.Subscription, *tenants)
	var chaosBackends []*aero.ChaosBackend
	for i := range subs {
		id := fmt.Sprintf("field-%03d", i)
		b, berr := mkBackend()
		if berr != nil {
			fail("backend %s: %v", id, berr)
		}
		if i < *chaosN {
			// Deterministic chaos soak: seeded per tenant, spread over the
			// whole replay at low rates so quarantine/recovery cycles are
			// visible in the stats without drowning the feed.
			cb := aero.NewChaosBackend(b, aero.ChaosPlan{
				Seed:       *chaosSeed + uint64(i),
				PanicEvery: 97, ErrEvery: 61, NaNEvery: 79,
				DelayEvery: 53, Delay: 2 * time.Millisecond,
			})
			chaosBackends = append(chaosBackends, cb)
			b = cb
		}
		if subs[i], err = eng.SubscribeBackend(id, b); err != nil {
			fail("subscribe %s: %v", id, err)
		}
		if fbArtifact != nil {
			fb, ferr := fbSpec.Open(fbArtifact)
			if ferr != nil {
				fail("fallback %s: %v", id, ferr)
			}
			if err := subs[i].SetFallback(fb); err != nil {
				fail("fallback %s: %v", id, err)
			}
		}
	}
	if *chaosN > 0 {
		fmt.Fprintf(os.Stderr, "chaos harness armed on %d tenants (seed %d)\n", *chaosN, *chaosSeed)
	}
	// Warm restarts: restore checkpointed backend states so tenants
	// resume with a full window instead of re-warming from a cold ring.
	if reg != nil {
		restored := 0
		for _, sub := range subs {
			blob, lerr := reg.LoadState(sub.ID)
			if lerr != nil {
				continue // no checkpoint for this tenant
			}
			if rerr := sub.RestoreState(blob); rerr != nil {
				fmt.Fprintf(os.Stderr, "restore %s: %v\n", sub.ID, rerr)
				continue
			}
			restored++
		}
		if restored > 0 {
			fmt.Fprintf(os.Stderr, "restored %d warm backend states from %s\n", restored, reg.Dir())
		}
	}
	fmt.Fprintf(os.Stderr, "engine up: %d tenants × %d frames each\n", *tenants, d.Test.Len())

	// Background lifecycle: retrain on the configured interval and
	// hot-swap every tenant on publish — through the typed model path for
	// AERO (reproducible round-derived seeds) and the backend's Trainer
	// for every other kind.
	var retrains, hotSwaps atomic.Uint64
	var retrainer *aero.Retrainer
	if *retrainEvery > 0 {
		rtCfg := aero.RetrainerConfig{
			Registry: reg,
			Source:   func(string) (*aero.Series, error) { return d.Train, nil },
			Interval: *retrainEvery,
			Metrics:  mreg,
			Logf:     func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
			OnResult: func(res aero.RetrainResult) {
				if res.Err != nil {
					fmt.Fprintf(os.Stderr, "retrain: %v\n", res.Err)
					return
				}
				retrains.Add(1)
				n := 0
				for _, sub := range subs {
					var serr error
					if res.Model != nil {
						// Shared-weights fast path: one parsed model swaps
						// into every tenant (the DSPOT stage passes it
						// through), instead of a per-tenant artifact parse
						// under the subscription lock.
						serr = sub.Swap(res.Model)
					} else {
						serr = sub.SwapArtifact(res.Artifact)
					}
					if serr != nil {
						fmt.Fprintf(os.Stderr, "swap %s: %v\n", sub.ID, serr)
						continue
					}
					n++
				}
				hotSwaps.Add(uint64(n))
				fmt.Fprintf(os.Stderr, "hot-swapped %s/%s (%s) into %d tenants mid-stream\n",
					*name, res.Version, res.Kind, n)
			},
		}
		if isAERO {
			base := model.Config()
			rtCfg.Config = func(_ string, round int) aero.Config {
				c := base
				c.Seed = base.Seed + int64(round) // reproducible from the logged seed
				return c
			}
		} else {
			rtCfg.Train = func(_ string, _ int, series *aero.Series) (string, []byte, error) {
				art, terr := spec.Train(series, opts)
				return *kindFlag, art, terr
			}
		}
		if retrainer, err = aero.NewRetrainer(rtCfg); err != nil {
			fail("retrainer: %v", err)
		}
		retrainer.Register(*name)
		retrainer.Start()
	}

	// Frame period of the replayed feed, used for the triage defaults and
	// to convert lead-lag offsets back into frames.
	step := 1.0
	if d.Test.Len() > 1 {
		step = d.Test.Time[1] - d.Test.Time[0]
	}

	// Alarm/incident and error consumers. Feed output goes through a
	// flushed bufio.Writer: an unbuffered write syscall per alarm would
	// let stdout I/O backpressure the engine's fan-in channel during
	// alarm bursts. The writer is flushed whenever the feed channel goes
	// momentarily idle (the burst is over) and at shutdown.
	out := bufio.NewWriterSize(os.Stdout, 64<<10)
	var consumers sync.WaitGroup
	var triageStream *aero.TriageStream
	var topIncidents []aero.Incident
	noteIncident := func(inc aero.Incident) {
		topIncidents = append(topIncidents, inc)
		for i := len(topIncidents) - 1; i > 0 && topIncidents[i].Severity > topIncidents[i-1].Severity; i-- {
			topIncidents[i], topIncidents[i-1] = topIncidents[i-1], topIncidents[i]
		}
		if len(topIncidents) > 5 {
			topIncidents = topIncidents[:5]
		}
	}
	printIncident := func(inc aero.Incident) {
		if *quiet {
			return
		}
		tag := ""
		if inc.Demoted {
			tag = " [single-field: artifact?]"
		}
		fmt.Fprintf(out, "INCIDENT #%d onset=%.0fs span=%.0fs tenants=%d episodes=%d frames=%d peak=%.4f severity=%.2f%s\n",
			inc.ID, inc.Onset, inc.End-inc.Onset, inc.Tenants, len(inc.Episodes), inc.Frames, inc.Peak, inc.Severity, tag)
	}
	if *triage {
		tcfg := aero.TriageConfig{BucketWidth: *triageBucket, Window: *triageWindow}
		if tcfg.BucketWidth <= 0 {
			tcfg.BucketWidth = 4 * step
		}
		if tcfg.Window <= 0 {
			tcfg.Window = 2 * tcfg.BucketWidth
		}
		var aerr error
		if triageStream, aerr = aero.AttachTriageObserved(eng, tcfg, 0, mreg); aerr != nil {
			fail("attach triage: %v", aerr)
		}
		// Resume triage mid-flight from the previous run's checkpoint:
		// open episodes continue instead of re-onsetting.
		if reg != nil {
			if blob, lerr := reg.LoadState("triage"); lerr == nil {
				if rerr := triageStream.Pipeline().RestoreState(blob); rerr != nil {
					fmt.Fprintf(os.Stderr, "restore triage state: %v\n", rerr)
				} else {
					st := triageStream.Pipeline().Stats()
					fmt.Fprintf(os.Stderr, "restored triage state (%d episodes resume mid-flight)\n", st.OpenEpisodes)
				}
			}
		}
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			ch := triageStream.Incidents()
			for inc := range ch {
				noteIncident(inc)
				printIncident(inc)
				if len(ch) == 0 {
					out.Flush()
				}
			}
			out.Flush()
		}()
	} else {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			ch := eng.Alarms()
			for a := range ch {
				if !*quiet {
					fmt.Fprintf(out, "ALARM %s star %d t=%.0fs score %.4f\n", a.Sub, a.Variate, a.Time, a.Score)
				}
				if len(ch) == 0 {
					out.Flush()
				}
			}
			out.Flush()
		}()
	}
	consumers.Add(1)
	go func() {
		defer consumers.Done()
		for fe := range eng.Errors() {
			fmt.Fprintf(os.Stderr, "frame error %s t=%.0fs: %v\n", fe.Sub, fe.Time, fe.Err)
		}
	}()

	// checkpointAll persists every tenant's warm backend state and the
	// mid-flight triage state to the registry. The run-to-completion
	// epilogue, the signal-interrupted replay, and the network server's
	// drain hook all funnel through it, so every exit path leaves the
	// same resumable state behind.
	checkpointAll := func() error {
		if reg == nil {
			return nil
		}
		var firstErr error
		saved := 0
		for _, sub := range subs {
			blob, serr := sub.SnapshotState()
			if serr != nil {
				fmt.Fprintf(os.Stderr, "snapshot %s: %v\n", sub.ID, serr)
				if firstErr == nil {
					firstErr = serr
				}
				continue
			}
			if serr = reg.SaveState(sub.ID, blob); serr != nil {
				fmt.Fprintf(os.Stderr, "checkpoint %s: %v\n", sub.ID, serr)
				if firstErr == nil {
					firstErr = serr
				}
				continue
			}
			saved++
		}
		fmt.Fprintf(os.Stderr, "checkpointed %d warm backend states to %s\n", saved, reg.Dir())
		if triageStream != nil {
			p := triageStream.Pipeline()
			if blob, terr := p.SnapshotState(); terr != nil {
				fmt.Fprintf(os.Stderr, "snapshot triage: %v\n", terr)
				if firstErr == nil {
					firstErr = terr
				}
			} else if terr = reg.SaveState("triage", blob); terr != nil {
				fmt.Fprintf(os.Stderr, "checkpoint triage: %v\n", terr)
				if firstErr == nil {
					firstErr = terr
				}
			} else {
				fmt.Fprintf(os.Stderr, "checkpointed triage state (%d open episodes resume next run)\n",
					p.Stats().OpenEpisodes)
			}
		}
		return firstErr
	}

	// refitTotals sums the adaptive tail models' maintenance counters
	// across tenants (zero and false when the alarm stage is static).
	refitTotals := func() (aero.RefitStats, bool) {
		var total aero.RefitStats
		any := false
		for _, sub := range subs {
			if rs, ok := sub.RefitStats(); ok {
				total = total.Add(rs)
				any = true
			}
		}
		return total, any
	}

	// healthSummary folds the tenants' supervision counters into one
	// stats-line fragment: tenants per non-healthy state, cumulative
	// faults/quarantines/recoveries, and fallback service. Empty while
	// everything is healthy and nothing has ever faulted.
	healthSummary := func() string {
		var degraded, quarantined, probation int
		var faults, panics, quarantines, recoveries, fbFrames, dropped, repaired uint64
		for _, sub := range subs {
			st := sub.Stats()
			switch st.Health {
			case aero.HealthDegraded:
				degraded++
			case aero.HealthQuarantined:
				quarantined++
			case aero.HealthProbation:
				probation++
			}
			faults += st.Faults
			panics += st.Panics
			quarantines += st.Quarantines
			recoveries += st.Recoveries
			fbFrames += st.FallbackFrames
			dropped += st.HygieneDropped
			repaired += st.HygieneRepaired
		}
		if faults == 0 && dropped == 0 && repaired == 0 {
			return ""
		}
		line := fmt.Sprintf(", health %d degraded/%d quarantined/%d probation (%d faults, %d panics, %d quarantines, %d recoveries)",
			degraded, quarantined, probation, faults, panics, quarantines, recoveries)
		if fbFrames > 0 {
			line += fmt.Sprintf(", fallback served %d frames", fbFrames)
		}
		if dropped+repaired > 0 {
			line += fmt.Sprintf(", hygiene %d dropped/%d repaired", dropped, repaired)
		}
		return line
	}
	chaosSummary := func() string {
		if len(chaosBackends) == 0 {
			return ""
		}
		var panics, errs, nans, delays uint64
		for _, cb := range chaosBackends {
			st := cb.Stats()
			panics += st.Panics
			errs += st.Errors
			nans += st.NaNs
			delays += st.Delays
		}
		return fmt.Sprintf(", chaos injected %d panics/%d errors/%d nans/%d delays", panics, errs, nans, delays)
	}

	// latencySummary renders the serving kind's score-stage percentiles
	// from the shared registry — the same histogram GET /metrics scrapes.
	// The kind label is taken from a live subscription (chaos wrapping
	// changes the registered kind), so lookup and registration agree.
	kindLabel := subs[len(subs)-1].Kind()
	latencySummary := func() string {
		if mreg == nil {
			return ""
		}
		h := mreg.FindHistogram("aero_engine_score_seconds", "kind", kindLabel)
		if h == nil {
			return ""
		}
		s := h.Snapshot()
		if s.Count == 0 {
			return ""
		}
		line := fmt.Sprintf(", score p50 %s / p99 %s",
			time.Duration(s.Quantile(0.5)).Round(time.Microsecond),
			time.Duration(s.Quantile(0.99)).Round(time.Microsecond))
		if th := mreg.FindHistogram("aero_dspot_step_seconds", "kind", kindLabel); th != nil {
			if ts := th.Snapshot(); ts.Count > 0 {
				line += fmt.Sprintf(", dspot step p99 %s",
					time.Duration(ts.Quantile(0.99)).Round(time.Microsecond))
			}
		}
		return line
	}

	// Periodic stats.
	statsDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(*statsEvery)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t := eng.Totals()
				line := fmt.Sprintf("stats: %d frames scored (%.0f/s), %d alarms (%d blocked), %d errors (%d reports dropped), %d queued",
					t.Frames, t.FramesPerSec, t.Alarms, t.AlarmsBlocked, t.Errors, t.ErrorsDropped, t.QueueDepth)
				line += latencySummary() + healthSummary() + chaosSummary()
				if rs, ok := refitTotals(); ok {
					line += fmt.Sprintf(", dspot %d exceedances / %d refits (%d warm)", rs.Exceedances, rs.Refits, rs.WarmRefits)
				}
				if triageStream != nil {
					ts := triageStream.Pipeline().Stats()
					line += fmt.Sprintf(", triage %d→%d (%.1f%% reduction)", ts.Alarms, ts.Incidents, 100*ts.Reduction)
				}
				fmt.Fprintln(os.Stderr, line)
			case <-statsDone:
				return
			}
		}
	}()

	start := time.Now()
	relaunched := false
	serveMode := *listenAddr != "" || *httpAddr != ""
	if serveMode {
		// Network mode: the engine is fed over the wire instead of from
		// the test split; runServe blocks until a shutdown signal drains
		// the server (checkpointing through the hook above).
		relaunched = runServe(serveEnv{
			eng: eng, subs: subs, metrics: mreg,
			listenAddr: *listenAddr, httpAddr: *httpAddr, httpPprof: *httpPprof,
			checkpoint: checkpointAll,
			extraStats: func() map[string]any {
				out := make(map[string]any)
				if rs, ok := refitTotals(); ok {
					out["dspot"] = rs
				}
				if triageStream != nil {
					out["triage"] = triageStream.Pipeline().Stats()
				}
				return out
			},
		})
	} else {
		// Replay mode: one feeder per tenant replays the test split
		// through the shared FrameSource. SIGINT/SIGTERM stop the feed at
		// the next frame; the normal epilogue below then checkpoints, so
		// an interrupted replay loses no warm state.
		stop := make(chan struct{})
		sigc := make(chan os.Signal, 2)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			if sig, ok := <-sigc; ok {
				fmt.Fprintf(os.Stderr, "%s: stopping replay, checkpointing...\n", sig)
				close(stop)
			}
		}()
		var feeders sync.WaitGroup
		for i := range subs {
			feeders.Add(1)
			go func(i int) {
				defer feeders.Done()
				id := subs[i].ID
				// A restored tenant already has a time cursor; shift the
				// replay so it continues strictly after the checkpointed feed.
				last, ok := subs[i].LastTime()
				src := aero.FrameSource{
					Time: d.Test.Time, Data: d.Test.Data,
					Rate: *rate, Stop: stop,
					Offset: aero.ResumeOffset(last, ok, d.Test.Time[0], step),
				}
				_, ferr := src.Feed(func(f aero.Frame) error { return eng.Ingest(id, f) })
				if ferr != nil && !errors.Is(ferr, aero.ErrFeedStopped) {
					fmt.Fprintf(os.Stderr, "ingest %s: %v\n", id, ferr)
				}
			}(i)
		}
		feeders.Wait()
		signal.Stop(sigc)
		close(sigc)
	}
	if retrainer != nil {
		retrainer.Close() // finish any in-flight retrain (its swap still lands)
	}
	eng.Flush()
	elapsed := time.Since(start)
	for _, s := range eng.Stats() {
		if s.Subscriptions == 0 && s.Frames == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "shard %d: %d tenants, %d frames, %d alarms (%d blocked), %d errors (%d reports dropped)\n",
			s.Shard, s.Subscriptions, s.Frames, s.Alarms, s.AlarmsBlocked, s.Errors, s.ErrorsDropped)
	}
	close(statsDone)
	eng.Close()
	consumers.Wait()

	// Checkpoint warm backend + triage states so the next run resumes
	// mid-window. Network mode already checkpointed through the drain
	// hook (before clients were told what to release), so only replay
	// mode checkpoints here.
	if !serveMode {
		checkpointAll()
	}

	// Triage epilogue: with a registry the mid-flight state was
	// checkpointed above (episodes resume on restart); without one flush
	// the remaining episodes into final incidents. Then report the
	// reduction, the top-ranked incidents and the strongest lead-lag
	// orderings.
	if triageStream != nil {
		p := triageStream.Pipeline()
		if reg == nil {
			for _, inc := range p.Finalize() {
				noteIncident(inc)
				printIncident(inc)
			}
			out.Flush()
		}
		ts := p.Stats()
		fmt.Fprintf(os.Stderr, "triage: %d alarms → %d incidents (%.1f%% reduction; %d deduped, %d episodes, %d still open)\n",
			ts.Alarms, ts.Incidents, 100*ts.Reduction, ts.Deduped, ts.Episodes, ts.OpenEpisodes)
		for i, inc := range topIncidents {
			tag := ""
			if inc.Demoted {
				tag = " [single-field: artifact?]"
			}
			fmt.Fprintf(os.Stderr, "  top %d: incident #%d onset=%.0fs tenants=%d peak=%.4f severity=%.2f%s\n",
				i+1, inc.ID, inc.Onset, inc.Tenants, inc.Peak, inc.Severity, tag)
		}
		for i, ll := range p.LeadLag(3) {
			if i == 5 {
				break
			}
			fmt.Fprintf(os.Stderr, "  leadlag: %s leads %s by ~%.1f frames (%.0f%% of %d pairings)\n",
				ll.Lead, ll.Lag, ll.Offset/step, 100*ll.Share, ll.Count)
		}
	}

	if rs, ok := refitTotals(); ok {
		fmt.Fprintf(os.Stderr, "dspot tails: %d exceedances, %d refits (%d warm-started, %d full grid scans)\n",
			rs.Exceedances, rs.Refits, rs.WarmRefits, rs.GridRefits)
	}
	total := eng.Totals()
	if h := healthSummary() + chaosSummary(); h != "" {
		fmt.Fprintf(os.Stderr, "containment:%s\n", h[1:])
	}
	if l := latencySummary(); l != "" {
		fmt.Fprintf(os.Stderr, "latency:%s\n", l[1:])
	}
	fmt.Fprintf(os.Stderr, "done: %d frames over %d tenants in %s (%.0f frames/s), %d alarms, %d retrains, %d hot-swaps\n",
		total.Frames, *tenants, elapsed.Round(time.Millisecond), float64(total.Frames)/elapsed.Seconds(),
		total.Alarms, retrains.Load(), hotSwaps.Load())
	if relaunched {
		fmt.Fprintln(os.Stderr, "successor process is serving; this process exits")
	}
}

// openBackend constructs one cold backend instance. AERO tenants share
// the in-memory model (scoring only reads the weights) instead of
// re-parsing the artifact per tenant; every other kind opens through its
// spec.
func openBackend(spec aero.BackendSpec, isAERO bool, model *aero.Model, artifact []byte) (aero.StreamBackend, error) {
	if isAERO {
		return aero.NewStreamDetectorWorkers(model, 1)
	}
	return spec.Open(artifact)
}
