// Command aeroserve replays a CSV dataset as a simulated live survey feed
// over many concurrent tenants, served by the sharded streaming engine —
// the deployment shape of the paper's §III-F online mode at GWAC scale.
//
// Usage:
//
//	aerogen -out data -dataset SyntheticMiddle
//	aeroserve -dir data -dataset SyntheticMiddle -tenants 16 -rate 0
//
// Each tenant simulates one telescope field observing the test split; the
// engine shards the tenants, scores frames on a worker pool, and streams
// alarms to stdout while periodic per-shard stats go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"aero"
)

// truncate returns the first n frames of a series (the series itself when
// n is zero or out of range), letting quick simulations skip the cost of
// training and replaying a full archived night.
func truncate(s *aero.Series, n int) *aero.Series {
	if n <= 0 || n >= s.Len() {
		return s
	}
	out := &aero.Series{
		Data:      make([][]float64, s.N()),
		Time:      s.Time[:n],
		Labels:    make([][]bool, s.N()),
		NoiseMask: make([][]bool, s.N()),
	}
	for v := 0; v < s.N(); v++ {
		out.Data[v] = s.Data[v][:n]
		out.Labels[v] = s.Labels[v][:n]
		out.NoiseMask[v] = s.NoiseMask[v][:n]
	}
	return out
}

func main() {
	dir := flag.String("dir", "data", "dataset directory (as written by aerogen)")
	name := flag.String("dataset", "SyntheticMiddle", "dataset name")
	config := flag.String("config", "small", "model configuration: small or paper")
	load := flag.String("load", "", "load a saved model instead of training")
	tenants := flag.Int("tenants", 8, "number of simulated telescope fields")
	rate := flag.Float64("rate", 0, "frames per second per tenant (0 = as fast as possible)")
	shards := flag.Int("shards", 0, "engine shards (0 = default)")
	workers := flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "per-shard queue depth (0 = default)")
	statsEvery := flag.Duration("stats", 2*time.Second, "stats print interval")
	quiet := flag.Bool("quiet", false, "suppress per-alarm output")
	trainLen := flag.Int("trainlen", 0, "truncate the training split to this many frames (0 = all)")
	testLen := flag.Int("testlen", 0, "truncate the replayed feed to this many frames (0 = all)")
	flag.Parse()

	d, err := aero.ReadDataset(*dir, *name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "load dataset: %v\n", err)
		os.Exit(1)
	}
	d.Train = truncate(d.Train, *trainLen)
	d.Test = truncate(d.Test, *testLen)

	var model *aero.Model
	if *load != "" {
		if model, err = aero.Load(*load); err != nil {
			fmt.Fprintf(os.Stderr, "load model: %v\n", err)
			os.Exit(1)
		}
	} else {
		cfg := aero.SmallConfig()
		if *config == "paper" {
			cfg = aero.DefaultConfig()
		}
		if model, err = aero.New(cfg, d.Train.N()); err != nil {
			fmt.Fprintf(os.Stderr, "model: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "training on %s (%d stars, %d samples)...\n", *name, d.Train.N(), d.Train.Len())
		if err := model.Fit(d.Train); err != nil {
			fmt.Fprintf(os.Stderr, "fit: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "model ready: POT threshold %.4f\n", model.Threshold())

	eng := aero.NewEngine(aero.EngineConfig{Shards: *shards, Workers: *workers, QueueDepth: *queue})
	subs := make([]*aero.Subscription, *tenants)
	for i := range subs {
		id := fmt.Sprintf("field-%03d", i)
		if subs[i], err = eng.Subscribe(id, model); err != nil {
			fmt.Fprintf(os.Stderr, "subscribe %s: %v\n", id, err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "engine up: %d tenants × %d frames each\n", *tenants, d.Test.Len())

	// Alarm and error consumers.
	var consumers sync.WaitGroup
	var totalAlarms int
	consumers.Add(1)
	go func() {
		defer consumers.Done()
		for a := range eng.Alarms() {
			totalAlarms++
			if !*quiet {
				fmt.Printf("ALARM %s star %d t=%.0fs score %.4f\n", a.Sub, a.Variate, a.Time, a.Score)
			}
		}
	}()
	consumers.Add(1)
	go func() {
		defer consumers.Done()
		for fe := range eng.Errors() {
			fmt.Fprintf(os.Stderr, "frame error %s t=%.0fs: %v\n", fe.Sub, fe.Time, fe.Err)
		}
	}()

	// Periodic stats.
	statsDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(*statsEvery)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t := eng.Totals()
				fmt.Fprintf(os.Stderr, "stats: %d frames scored (%.0f/s), %d alarms, %d errors, %d queued\n",
					t.Frames, t.FramesPerSec, t.Alarms, t.Errors, t.QueueDepth)
			case <-statsDone:
				return
			}
		}
	}()

	// Feeders: one goroutine per tenant replaying the test split.
	start := time.Now()
	var feeders sync.WaitGroup
	for i := range subs {
		feeders.Add(1)
		go func(i int) {
			defer feeders.Done()
			id := subs[i].ID
			frame := aero.Frame{Magnitudes: make([]float64, d.Test.N())}
			var tick *time.Ticker
			if *rate > 0 {
				tick = time.NewTicker(time.Duration(float64(time.Second) / *rate))
				defer tick.Stop()
			}
			for t := 0; t < d.Test.Len(); t++ {
				if tick != nil {
					<-tick.C
				}
				frame.Time = d.Test.Time[t]
				for v := 0; v < d.Test.N(); v++ {
					frame.Magnitudes[v] = d.Test.Data[v][t]
				}
				if err := eng.Ingest(id, frame); err != nil {
					fmt.Fprintf(os.Stderr, "ingest %s: %v\n", id, err)
					return
				}
			}
		}(i)
	}
	feeders.Wait()
	eng.Flush()
	elapsed := time.Since(start)
	for _, s := range eng.Stats() {
		if s.Subscriptions == 0 && s.Frames == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "shard %d: %d tenants, %d frames, %d alarms, %d errors\n",
			s.Shard, s.Subscriptions, s.Frames, s.Alarms, s.Errors)
	}
	close(statsDone)
	eng.Close()
	consumers.Wait()

	total := eng.Totals()
	fmt.Fprintf(os.Stderr, "done: %d frames over %d tenants in %s (%.0f frames/s), %d alarms\n",
		total.Frames, *tenants, elapsed.Round(time.Millisecond), float64(total.Frames)/elapsed.Seconds(), totalAlarms)
}
