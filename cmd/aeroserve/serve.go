package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aero"
)

// serveEnv carries the wired engine into network-serving mode: instead
// of replaying the dataset, aeroserve fronts the engine with the binary
// frame protocol (-listen) and/or the HTTP endpoints (-http) and waits
// for a shutdown signal.
type serveEnv struct {
	eng        *aero.Engine
	subs       []*aero.Subscription
	metrics    *aero.MetricsRegistry
	listenAddr string
	httpAddr   string
	httpPprof  bool
	checkpoint func() error
	extraStats func() map[string]any
}

// runServe serves until SIGINT/SIGTERM (drain, checkpoint, exit) or
// SIGUSR2 (drain, checkpoint, hand the listener to a re-exec'd
// successor — zero-downtime restart). It reports whether a successor
// took over, so the epilogue skips the duplicate checkpoint.
func runServe(env serveEnv) bool {
	byID := make(map[string]*aero.Subscription, len(env.subs))
	for _, sub := range env.subs {
		byID[sub.ID] = sub
	}
	srv, err := aero.NewIngestServer(aero.IngestServerConfig{
		Engine:      env.eng,
		Metrics:     env.metrics,
		EnablePprof: env.httpPprof,
		Lookup: func(tenant string) (*aero.Subscription, error) {
			if sub, ok := byID[tenant]; ok {
				return sub, nil
			}
			return nil, fmt.Errorf("no such tenant (serving %d fields)", len(byID))
		},
		Subscriptions: func() []*aero.Subscription { return env.subs },
		Checkpoint:    env.checkpoint,
		ExtraStats:    env.extraStats,
		Logf:          func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ingest server: %v\n", err)
		os.Exit(1)
	}

	var l net.Listener
	if env.listenAddr != "" {
		var inherited bool
		l, inherited, err = aero.ListenInherited(env.listenAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "listen: %v\n", err)
			os.Exit(1)
		}
		if inherited {
			fmt.Fprintf(os.Stderr, "resumed inherited listener on %s (zero-downtime restart)\n", l.Addr())
		} else {
			fmt.Fprintf(os.Stderr, "serving frame protocol on %s\n", l.Addr())
		}
	}
	var httpSrv *http.Server
	if env.httpAddr != "" {
		httpSrv = &http.Server{Addr: env.httpAddr, Handler: srv.Handler()}
		go func() {
			if herr := httpSrv.ListenAndServe(); herr != nil && !errors.Is(herr, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "http: %v\n", herr)
			}
		}()
		endpoints := "/ingest /stats /healthz"
		if env.metrics != nil {
			endpoints += " /metrics /trace/{tenant}"
		}
		if env.httpPprof {
			endpoints += " /debug/pprof/"
		}
		fmt.Fprintf(os.Stderr, "serving HTTP on %s (%s)\n", env.httpAddr, endpoints)
	}

	serveErr := make(chan error, 1)
	if l != nil {
		go func() { serveErr <- srv.Serve(l) }()
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR2)
	relaunch := false
	select {
	case sig := <-sigc:
		relaunch = sig == syscall.SIGUSR2 && l != nil
		fmt.Fprintf(os.Stderr, "%s: draining (flush + checkpoint + client handoff)...\n", sig)
	case serr := <-serveErr:
		if serr != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", serr)
		}
	}
	signal.Stop(sigc)

	// Drain: stop accepting, quiesce connections, flush the engine, run
	// the checkpoint hook, then tell every client the durable watermark.
	if derr := srv.Drain(); derr != nil {
		fmt.Fprintf(os.Stderr, "drain: %v\n", derr)
		relaunch = false // don't hand off a socket whose state isn't durable
	}
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		httpSrv.Shutdown(ctx)
		cancel()
	}

	if relaunch {
		f, ferr := aero.IngestListenerFile(l)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "listener handoff: %v\n", ferr)
			l.Close()
			return false
		}
		pid, rerr := aero.IngestRelaunch(f)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "relaunch: %v\n", rerr)
			l.Close()
			return false
		}
		fmt.Fprintf(os.Stderr, "listener handed to successor pid %d; drained clients will reconnect to it\n", pid)
		return true
	}
	if l != nil {
		l.Close()
	}
	return false
}
