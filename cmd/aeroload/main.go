// Command aeroload drives a network aeroserve with the binary frame
// protocol: one client per simulated telescope field replays the test
// split over TCP, paced by -rate and throttled end-to-end by the
// server's credit-based flow control (a saturated engine shard slows
// the matching client instead of dropping frames).
//
// Usage:
//
//	aeroserve -dir data -dataset SyntheticMiddle -backend fluxev -listen :7071 &
//	aeroload -addr localhost:7071 -dir data -dataset SyntheticMiddle -tenants 8
//
// The tenant ids ("field-%03d") match the ones aeroserve registers, so
// the two commands agree on -tenants (aeroload may use fewer). A drain
// on the server side (SIGTERM/SIGUSR2 → zero-downtime restart) is
// transparent here: the client releases the acknowledged prefix,
// reconnects, and resends its unacknowledged suffix to the successor —
// the Drains/Reconnects/Resent counters in the final report show it
// happened.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"aero"
)

func main() {
	addr := flag.String("addr", "localhost:7071", "aeroserve -listen address")
	dir := flag.String("dir", "data", "dataset directory (as written by aerogen)")
	name := flag.String("dataset", "SyntheticMiddle", "dataset name")
	tenants := flag.Int("tenants", 8, "number of fields to stream (ids field-000..)")
	rate := flag.Float64("rate", 0, "frames per second per tenant (0 = as fast as credits allow)")
	testLen := flag.Int("testlen", 0, "truncate the replayed feed to this many frames (0 = all)")
	window := flag.Int("window", 0, "client resend-buffer/credit window in frames (0 = default)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		os.Exit(1)
	}

	d, err := aero.ReadDataset(*dir, *name)
	if err != nil {
		fail("load dataset: %v", err)
	}
	times, data := d.Test.Time, d.Test.Data
	if *testLen > 0 && *testLen < len(times) {
		times = times[:*testLen]
		trunc := make([][]float64, len(data))
		for v := range data {
			trunc[v] = data[v][:*testLen]
		}
		data = trunc
	}

	// Ctrl-C stops the feeders at the next frame; each client then
	// flushes its pending frames and parts with Bye, so nothing sent is
	// left unacknowledged.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		if sig, ok := <-sigc; ok {
			fmt.Fprintf(os.Stderr, "%s: stopping feed, flushing clients...\n", sig)
			close(stop)
		}
	}()

	// One shared send→ack latency histogram across all clients: Record is
	// atomic, so concurrent feeders aggregate without coordination. This
	// is the client-visible round trip — wire, queueing, scoring, ack
	// batching, and any drain/redial a frame rode out.
	latency := aero.NewMetricsHistogram()

	start := time.Now()
	clients := make([]*aero.IngestClient, *tenants)
	var wg sync.WaitGroup
	var failed atomic.Uint64
	for i := 0; i < *tenants; i++ {
		id := fmt.Sprintf("field-%03d", i)
		c, derr := aero.DialIngest(aero.IngestClientConfig{
			Addr: *addr, Tenant: id, Variates: len(data), Window: *window,
			Latency: latency,
			Logf:    func(f string, a ...any) { fmt.Fprintf(os.Stderr, id+": "+f+"\n", a...) },
		})
		if derr != nil {
			fail("dial %s for %s: %v", *addr, id, derr)
		}
		clients[i] = c
		wg.Add(1)
		go func(id string, c *aero.IngestClient) {
			defer wg.Done()
			src := aero.FrameSource{Time: times, Data: data, Rate: *rate, Stop: stop}
			if _, ferr := src.Feed(c.Send); ferr != nil && !errors.Is(ferr, aero.ErrFeedStopped) {
				fmt.Fprintf(os.Stderr, "%s: send: %v\n", id, ferr)
				failed.Add(1)
			}
			if cerr := c.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "%s: close: %v\n", id, cerr)
			}
		}(id, c)
	}
	wg.Wait()
	signal.Stop(sigc)
	close(sigc)
	elapsed := time.Since(start)

	var agg aero.IngestClientStats
	for _, c := range clients {
		st := c.Stats()
		agg.Sent += st.Sent
		agg.Acked += st.Acked
		agg.Resent += st.Resent
		agg.Reconnects += st.Reconnects
		agg.BlockedWaits += st.BlockedWaits
		agg.Drains += st.Drains
	}
	fmt.Fprintf(os.Stderr,
		"done: %d frames over %d tenants in %s (%.0f frames/s): %d acked, %d resent, %d reconnects, %d drains, %d credit stalls\n",
		agg.Sent, *tenants, elapsed.Round(time.Millisecond),
		float64(agg.Sent)/elapsed.Seconds(), agg.Acked, agg.Resent,
		agg.Reconnects, agg.Drains, agg.BlockedWaits)
	if s := latency.Snapshot(); s.Count > 0 {
		fmt.Fprintf(os.Stderr, "send→ack latency: p50 %s, p99 %s, p99.9 %s (mean %s over %d acked)\n",
			time.Duration(s.Quantile(0.5)).Round(time.Microsecond),
			time.Duration(s.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(s.Quantile(0.999)).Round(time.Microsecond),
			time.Duration(s.Mean()).Round(time.Microsecond), s.Count)
	}
	if failed.Load() > 0 {
		os.Exit(1)
	}
}
