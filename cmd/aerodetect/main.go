// Command aerodetect trains AERO on a CSV dataset and reports detections.
//
// Usage:
//
//	aerogen -out data -dataset SyntheticMiddle
//	aerodetect -dir data -dataset SyntheticMiddle -config small
//
// It prints the calibrated threshold, per-star alarm segments, and — when
// ground-truth labels are present — point-adjusted precision/recall/F1.
package main

import (
	"flag"
	"fmt"
	"os"

	"aero"
	"aero/internal/anomaly"
)

func main() {
	dir := flag.String("dir", "data", "dataset directory (as written by aerogen)")
	name := flag.String("dataset", "SyntheticMiddle", "dataset name")
	config := flag.String("config", "small", "model configuration: small or paper")
	verbose := flag.Bool("v", false, "log training progress")
	flag.Parse()

	d, err := aero.ReadDataset(*dir, *name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "load: %v\n", err)
		os.Exit(1)
	}

	cfg := aero.SmallConfig()
	if *config == "paper" {
		cfg = aero.DefaultConfig()
	}
	if *verbose {
		cfg.Logf = func(f string, a ...any) { fmt.Printf(f+"\n", a...) }
	}

	model, err := aero.New(cfg, d.Train.N())
	if err != nil {
		fmt.Fprintf(os.Stderr, "model: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("training AERO on %s (%d stars, %d samples)...\n", *name, d.Train.N(), d.Train.Len())
	if err := model.Fit(d.Train); err != nil {
		fmt.Fprintf(os.Stderr, "fit: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trained: stage1 %d epochs, stage2 %d epochs, POT threshold %.4f\n",
		model.Epochs1, model.Epochs2, model.Threshold())

	pred, err := model.Detect(d.Test)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detect: %v\n", err)
		os.Exit(1)
	}

	totalAlarms := 0
	for v := range pred {
		for _, seg := range anomaly.Segments(pred[v]) {
			fmt.Printf("ALARM star %d: samples [%d, %d) (t=%.0fs..%.0fs)\n",
				v, seg.Start, seg.End, d.Test.Time[seg.Start], d.Test.Time[seg.End-1])
			totalAlarms++
		}
	}
	fmt.Printf("%d alarm segments\n", totalAlarms)

	if d.Test.AnomalyPoints() > 0 {
		var c aero.Confusion
		for v := range pred {
			c.Add(aero.EvaluateAdjusted(pred[v], d.Test.Labels[v]))
		}
		fmt.Printf("point-adjusted: precision %.2f%% recall %.2f%% F1 %.2f%%\n",
			100*c.Precision(), 100*c.Recall(), 100*c.F1())
	}
}
