// Command aerodetect trains AERO on a CSV dataset and reports detections.
//
// Usage:
//
//	aerogen -out data -dataset SyntheticMiddle
//	aerodetect -dir data -dataset SyntheticMiddle -config small -save model.json
//	aerodetect -dir data -dataset SyntheticMiddle -load model.json
//
// It prints the calibrated threshold, per-star alarm segments, and — when
// ground-truth labels are present — point-adjusted precision/recall/F1.
// With -save the trained model is persisted (atomically) for later runs;
// with -load a saved model is reused instead of retraining from scratch.
package main

import (
	"flag"
	"fmt"
	"os"

	"aero"
	"aero/internal/anomaly"
)

func main() {
	dir := flag.String("dir", "data", "dataset directory (as written by aerogen)")
	name := flag.String("dataset", "SyntheticMiddle", "dataset name")
	config := flag.String("config", "small", "model configuration: small or paper")
	load := flag.String("load", "", "load a saved model instead of training")
	save := flag.String("save", "", "save the trained model to this path (atomic write)")
	verbose := flag.Bool("v", false, "log training progress")
	flag.Parse()

	d, err := aero.ReadDataset(*dir, *name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "load: %v\n", err)
		os.Exit(1)
	}

	var model *aero.Model
	if *load != "" {
		if model, err = aero.Load(*load); err != nil {
			fmt.Fprintf(os.Stderr, "load model: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %s: POT threshold %.4f\n", *load, model.Threshold())
	} else {
		cfg := aero.SmallConfig()
		if *config == "paper" {
			cfg = aero.DefaultConfig()
		}
		if *verbose {
			cfg.Logf = func(f string, a ...any) { fmt.Printf(f+"\n", a...) }
		}
		if model, err = aero.New(cfg, d.Train.N()); err != nil {
			fmt.Fprintf(os.Stderr, "model: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("training AERO on %s (%d stars, %d samples)...\n", *name, d.Train.N(), d.Train.Len())
		if err := model.Fit(d.Train); err != nil {
			fmt.Fprintf(os.Stderr, "fit: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trained: stage1 %d epochs, stage2 %d epochs, POT threshold %.4f\n",
			model.Epochs1, model.Epochs2, model.Threshold())
	}
	if *save != "" {
		if err := model.Save(*save); err != nil {
			fmt.Fprintf(os.Stderr, "save model: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("saved model to %s\n", *save)
	}

	pred, err := model.Detect(d.Test)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detect: %v\n", err)
		os.Exit(1)
	}

	totalAlarms := 0
	for v := range pred {
		for _, seg := range anomaly.Segments(pred[v]) {
			fmt.Printf("ALARM star %d: samples [%d, %d) (t=%.0fs..%.0fs)\n",
				v, seg.Start, seg.End, d.Test.Time[seg.Start], d.Test.Time[seg.End-1])
			totalAlarms++
		}
	}
	fmt.Printf("%d alarm segments\n", totalAlarms)

	if d.Test.AnomalyPoints() > 0 {
		var c aero.Confusion
		for v := range pred {
			c.Add(aero.EvaluateAdjusted(pred[v], d.Test.Labels[v]))
		}
		fmt.Printf("point-adjusted: precision %.2f%% recall %.2f%% F1 %.2f%%\n",
			100*c.Precision(), 100*c.Recall(), 100*c.F1())
	}
}
