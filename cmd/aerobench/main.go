// Command aerobench regenerates the paper's tables and figures.
//
// Usage:
//
//	aerobench -exp table2 -scale small
//	aerobench -exp all -scale paper > results.txt
//
// Experiments: table1, table2, table3, table4, fig5, fig6, fig7, fig8,
// fig9, fig10, all. Scale "small" finishes in minutes on a laptop;
// "paper" uses the paper's dataset sizes and hyperparameters.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aero/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1..table4, fig5..fig10, all")
	scale := flag.String("scale", "small", "compute scale: small or paper")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 0, "seed offset for datasets and models")
	flag.Parse()

	opts := experiments.Options{Workers: *workers, Seed: *seed}
	switch *scale {
	case "small":
		opts.Scale = experiments.ScaleSmall
	case "paper":
		opts.Scale = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small or paper)\n", *scale)
		os.Exit(2)
	}

	runners := map[string]func(){
		"table1": func() { experiments.RunTable1(os.Stdout, opts) },
		"table2": func() { experiments.RunTable2(os.Stdout, opts) },
		"table3": func() { experiments.RunTable3(os.Stdout, opts) },
		"table4": func() { experiments.RunTable4(os.Stdout, opts) },
		"fig5":   func() { experiments.RunFig5(os.Stdout, opts) },
		"fig6":   func() { experiments.RunFig6(os.Stdout, opts) },
		"fig7":   func() { experiments.RunFig7(os.Stdout, opts) },
		"fig8":   func() { experiments.RunFig8(os.Stdout, opts) },
		"fig9":   func() { experiments.RunFig9(os.Stdout, opts) },
		"fig10":  func() { experiments.RunFig10(os.Stdout, opts) },
	}
	order := []string{"table1", "table2", "table3", "table4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (want %s or all)\n", name, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	start := time.Now()
	for _, name := range selected {
		t0 := time.Now()
		runners[name]()
		fmt.Printf("[%s done in %.1fs]\n", name, time.Since(t0).Seconds())
	}
	fmt.Printf("\nall selected experiments done in %.1fs\n", time.Since(start).Seconds())
}
