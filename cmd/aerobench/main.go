// Command aerobench regenerates the paper's tables and figures and runs
// the targeted micro-benchmarks.
//
// Usage:
//
//	aerobench -exp table2 -scale small
//	aerobench -exp all -scale paper > results.txt
//	aerobench -exp bench -json BENCH_train.json
//
// Experiments: table1, table2, table3, table4, fig5, fig6, fig7, fig8,
// fig9, fig10, bench, all. Scale "small" finishes in minutes on a laptop;
// "paper" uses the paper's dataset sizes and hyperparameters. "bench" runs
// the training, streaming, lifecycle and triage micro-benchmarks
// (ScaleTiny shapes, matching BenchmarkAEROTraining, BenchmarkStreamPush,
// BenchmarkDetectorSnapshot/Restore, BenchmarkSubscriptionSwap and
// BenchmarkTriagePush in bench_test.go); snapshot sizes surface as the
// snapshot-bytes metric.
// It also measures per-backend streaming throughput — one warm Push per
// registered backend kind, static and DSPOT-wrapped (matching
// BenchmarkBackendStreamPush) — as BackendPush/<kind> entries, and the
// network ingest path — one frame per op over a loopback socket through
// the wire protocol, credit flow control and batched acks (matching
// BenchmarkIngestRoundTrip in internal/ingest) — as IngestRoundTrip.
//
// With -json FILE, a machine-readable summary — per-experiment wall times
// and per-benchmark ns/op, B/op and allocs/op — is written to FILE, so CI
// and tooling can track regressions without scraping table output.
//
// With -cpuprofile FILE / -memprofile FILE, a CPU profile of the selected
// experiments and a post-run heap profile are written for go tool pprof.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"aero"
	"aero/internal/dataset"
	"aero/internal/evt"
	"aero/internal/experiments"
)

// experimentResult is one -json entry for a table/figure regeneration.
type experimentResult struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// benchResult is one -json entry for a micro-benchmark. Extra carries
// benchmark-reported custom metrics (e.g. snapshot-bytes for the
// lifecycle snapshot/restore benchmarks).
type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// report is the -json document.
type report struct {
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	Scale       string             `json:"scale"`
	Experiments []experimentResult `json:"experiments,omitempty"`
	Benchmarks  []benchResult      `json:"benchmarks,omitempty"`
}

// benchDataset generates the tiny micro-benchmark field, matching
// benchDataset in bench_test.go.
func benchDataset() *dataset.Dataset {
	return dataset.SyntheticConfig{
		Name: "bench", N: 6, TrainLen: 350, TestLen: 300,
		NoiseVariates: 4, AnomalySegments: 1, NoisePct: 2,
		VariableFrac: 0.5, Seed: 3,
	}.Generate()
}

// benchModel trains the micro-benchmark model on d with the ScaleTiny
// hyperparameters of bench_test.go. The dataset is generated once by the
// caller so the measured loop covers exactly what BenchmarkAEROTraining
// measures: model construction plus Fit.
func benchModel(d *dataset.Dataset) (*aero.Model, error) {
	c := aero.SmallConfig()
	c.LongWindow = 48
	c.ShortWindow = 16
	c.MaxEpochs = 3
	c.TrainStride = 24
	c.EvalStride = 16
	m, err := aero.New(c, d.Train.N())
	if err != nil {
		return nil, err
	}
	if err := m.Fit(d.Train); err != nil {
		return nil, err
	}
	return m, nil
}

// runMicroBenchmarks executes the training and streaming benchmarks via
// testing.Benchmark and returns their results.
func runMicroBenchmarks(w *os.File) ([]benchResult, error) {
	var out []benchResult
	record := func(name string, r testing.BenchmarkResult) {
		res := benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Extra[k] = v
			}
		}
		out = append(out, res)
		fmt.Fprintf(w, "%-18s %12.0f ns/op %12d B/op %9d allocs/op",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		for k, v := range res.Extra {
			if math.Abs(v) < 1 { // fractional metrics (e.g. refresh_rate)
				fmt.Fprintf(w, " %12.4f %s", v, k)
			} else {
				fmt.Fprintf(w, " %12.0f %s", v, k)
			}
		}
		fmt.Fprintln(w)
	}

	d := benchDataset()
	var benchErr error
	record("AEROTraining", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := benchModel(d); err != nil {
				benchErr = err
				b.Skip(err)
			}
		}
	}))
	if benchErr != nil {
		return nil, benchErr
	}

	m, err := benchModel(d)
	if err != nil {
		return nil, err
	}
	s, err := aero.NewStreamDetector(m)
	if err != nil {
		return nil, err
	}
	frame := aero.Frame{Magnitudes: make([]float64, d.Test.N())}
	t := 0
	push := func() error {
		idx := t % d.Test.Len()
		frame.Time = float64(t)
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][idx]
		}
		_, err := s.Push(frame)
		t++
		return err
	}
	for i := 0; i < m.Config().LongWindow+8; i++ {
		if err := push(); err != nil {
			return nil, err
		}
	}
	// Full-recompute cost first: disable the incremental schedule so every
	// push runs the whole tape forward, then restore the production default.
	// The StreamPush row below measures the default incremental path and
	// carries this exact-mode cost (full_recompute_ns) plus the fraction of
	// frames the schedule recomputed exactly (refresh_rate) as extras, so
	// the reuse win and its safety margin read straight off one row.
	s.SetIncrementalPolicy(aero.IncrementalPolicy{})
	full := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := push(); err != nil {
				benchErr = err
				b.Skip(err)
			}
		}
	})
	if benchErr != nil {
		return nil, benchErr
	}
	fullNs := float64(full.T.Nanoseconds()) / float64(full.N)
	s.SetIncrementalPolicy(aero.DefaultIncrementalPolicy())
	for i := 0; i < 8; i++ { // settle back into incremental steady state
		if err := push(); err != nil {
			return nil, err
		}
	}
	p50, p99, err := latencyPercentiles(push, 512)
	if err != nil {
		return nil, err
	}
	bare := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		st0 := s.IncrementalStats()
		for i := 0; i < b.N; i++ {
			if err := push(); err != nil {
				benchErr = err
				b.Skip(err)
			}
		}
		if frames := s.IncrementalStats().Frames - st0.Frames; frames > 0 {
			inc := s.IncrementalStats().Incremental - st0.Incremental
			b.ReportMetric(float64(frames-inc)/float64(frames), "refresh_rate")
		}
		b.ReportMetric(fullNs, "full_recompute_ns")
		b.ReportMetric(p50, "p50_ns")
		b.ReportMetric(p99, "p99_ns")
	})
	record("StreamPush", bare)
	if benchErr != nil {
		return nil, benchErr
	}

	// The same push under the engine's panic-containment guard; the extra
	// metric carries the unguarded cost so the containment tax is readable
	// straight off the row (it should be ~0: the guard's defer/recover is
	// open-coded and allocation-free on the benign path).
	bareNs := float64(bare.T.Nanoseconds()) / float64(bare.N)
	record("GuardedPush", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx := t % d.Test.Len()
			frame.Time = float64(t)
			for v := 0; v < d.Test.N(); v++ {
				frame.Magnitudes[v] = d.Test.Data[v][idx]
			}
			if _, err := aero.GuardPush(s, frame); err != nil {
				benchErr = err
				b.Skip(err)
			}
			t++
		}
		b.ReportMetric(bareNs, "bare_ns_per_op")
	}))
	if benchErr != nil {
		return nil, benchErr
	}

	// Lifecycle benchmarks: warm-state snapshot/restore and engine-level
	// model hot-swap (matching BenchmarkDetectorSnapshot/Restore and
	// BenchmarkSubscriptionSwap in bench_test.go).
	blob, err := s.SnapshotState()
	if err != nil {
		return nil, err
	}
	record("DetectorSnapshot", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if blob, benchErr = s.SnapshotState(); benchErr != nil {
				b.Skip(benchErr)
			}
		}
		b.ReportMetric(float64(len(blob)), "snapshot-bytes")
	}))
	if benchErr != nil {
		return nil, benchErr
	}
	fresh, err := aero.NewStreamDetector(m)
	if err != nil {
		return nil, err
	}
	record("DetectorRestore", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if benchErr = fresh.RestoreState(blob); benchErr != nil {
				b.Skip(benchErr)
			}
		}
		b.ReportMetric(float64(len(blob)), "snapshot-bytes")
	}))
	if benchErr != nil {
		return nil, benchErr
	}

	tmpDir, err := os.MkdirTemp("", "aerobench-swap-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmpDir)
	twinPath := filepath.Join(tmpDir, "twin.json")
	if err := m.Save(twinPath); err != nil {
		return nil, err
	}
	twin, err := aero.Load(twinPath)
	if err != nil {
		return nil, err
	}
	e := aero.NewEngine(aero.EngineConfig{Shards: 1, Workers: 1})
	go func() {
		for range e.Alarms() {
		}
	}()
	sub, err := e.Subscribe("swap-bench", m)
	if err != nil {
		return nil, err
	}
	warm := aero.Frame{Magnitudes: make([]float64, d.Test.N())}
	for i := 0; i < m.Config().LongWindow+8; i++ {
		warm.Time = float64(i)
		for v := 0; v < d.Test.N(); v++ {
			warm.Magnitudes[v] = d.Test.Data[v][i%d.Test.Len()]
		}
		if err := e.Ingest("swap-bench", warm); err != nil {
			return nil, err
		}
	}
	e.Flush()
	models := [2]*aero.Model{twin, m}
	record("SubscriptionSwap", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if benchErr = sub.Swap(models[i%2]); benchErr != nil {
				b.Skip(benchErr)
			}
		}
	}))
	e.Close()
	if benchErr != nil {
		return nil, benchErr
	}

	// Triage: one benign-path alarm through the four-stage pipeline —
	// dedup probe plus episode extension across 8 warm tenants (matching
	// BenchmarkTriagePush in bench_test.go).
	tp := aero.NewTriagePipeline(aero.TriageConfig{
		BucketWidth: 1, EpisodeGap: 4, MaxEpisodeLen: math.MaxFloat64 / 4, Window: 2,
	})
	const triageTenants = 8
	var triageIDs [triageTenants]string
	for i := range triageIDs {
		triageIDs[i] = fmt.Sprintf("field-%d", i)
	}
	tt, ti := 0, 0
	triagePush := func() {
		a := aero.EngineAlarm{Sub: triageIDs[ti%triageTenants], Alarm: aero.Alarm{Variate: 0, Time: float64(tt), Score: 1}}
		if len(tp.Push(a)) != 0 {
			benchErr = fmt.Errorf("benign triage push emitted incidents")
		}
		if ti++; ti%triageTenants == 0 {
			tt++
		}
	}
	for i := 0; i < 8*triageTenants; i++ {
		triagePush()
	}
	record("TriagePush", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			triagePush()
		}
	}))
	if benchErr != nil {
		return nil, benchErr
	}

	// Network ingest: one op is one frame through the full wire path —
	// client encode, TCP loopback, CRC check, engine ingest, batched ack,
	// credit top-up — against a no-op backend so the row isolates
	// transport + engine cost (matching BenchmarkIngestRoundTrip in
	// internal/ingest). wire-bytes is the frame's on-the-wire size.
	ingestRes, err := benchIngestRoundTrip()
	if err != nil {
		return nil, fmt.Errorf("bench IngestRoundTrip: %w", err)
	}
	record("IngestRoundTrip", ingestRes)

	// SPOT step paths (matching BenchmarkSPOTStep in internal/evt): the
	// benign O(1) common case, the amortized in-tail update under the
	// default refit policy, and exact mode's full Grimshaw fit per
	// exceedance — the per-step price the refit policy amortizes away.
	spotCalib := make([]float64, 3000)
	{
		rng := rand.New(rand.NewSource(81))
		for i := range spotCalib {
			spotCalib[i] = math.Abs(rng.NormFloat64())
		}
	}
	spotBench := func(policy aero.RefitPolicy, benign bool) (testing.BenchmarkResult, error) {
		s := evt.NewSPOT(0.99, 1e-3)
		s.Policy = policy
		if err := s.Fit(spotCalib); err != nil {
			return testing.BenchmarkResult{}, err
		}
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if benign {
					_, _ = s.Step(0.1)
				} else {
					_, _ = s.Step(s.TailThreshold() + 0.001 + 0.0001*float64(i%7))
				}
			}
		}), nil
	}
	for _, sb := range []struct {
		name   string
		policy aero.RefitPolicy
		benign bool
	}{
		{"SPOTStep/benign", aero.DefaultRefitPolicy(), true},
		{"SPOTStep/exceedance", aero.DefaultRefitPolicy(), false},
		{"SPOTStep/refit", aero.ExactRefitPolicy(), false},
	} {
		res, err := spotBench(sb.policy, sb.benign)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", sb.name, err)
		}
		record(sb.name, res)
	}

	// Per-backend streaming throughput: one op is one warm Push through
	// each registered backend kind, with its static fitted threshold and
	// wrapped in the DSPOT adaptive-alarming stage (the stage overhead is
	// the difference between the two rows).
	aeroArtifact, err := m.MarshalBytes()
	if err != nil {
		return nil, err
	}
	for _, kind := range aero.BackendKinds() {
		spec, _ := aero.LookupBackend(kind)
		artifact := aeroArtifact
		if kind != "aero" {
			opts := aero.SmallBackendOptions()
			if artifact, err = spec.Train(d.Train, opts); err != nil {
				return nil, fmt.Errorf("train %s: %w", kind, err)
			}
		}
		for _, adaptive := range []bool{false, true} {
			det, err := openBenchBackend(spec, artifact, adaptive, d)
			if err != nil {
				return nil, fmt.Errorf("open %s: %w", kind, err)
			}
			res, err := benchBackendPush(det, d)
			if err != nil {
				return nil, fmt.Errorf("bench %s: %w", kind, err)
			}
			record("BackendPush/"+det.Kind(), res)
		}
	}
	return out, nil
}

// sinkBackend is the no-op detector behind the IngestRoundTrip row: it
// accepts every frame instantly so the measurement is pure transport +
// engine overhead.
type sinkBackend struct{ n int }

func (s *sinkBackend) Kind() string                             { return "sink" }
func (s *sinkBackend) Variates() int                            { return s.n }
func (s *sinkBackend) Ready() bool                              { return true }
func (s *sinkBackend) Threshold() float64                       { return math.Inf(1) }
func (s *sinkBackend) LastTime() (float64, bool)                { return 0, false }
func (s *sinkBackend) PushScores(aero.Frame) ([]float64, error) { return nil, nil }
func (s *sinkBackend) Push(aero.Frame) ([]aero.Alarm, error)    { return nil, nil }
func (s *sinkBackend) SwapArtifact([]byte) error                { return nil }
func (s *sinkBackend) SnapshotState() ([]byte, error)           { return []byte{1}, nil }
func (s *sinkBackend) RestoreState([]byte) error                { return nil }

// benchIngestRoundTrip builds a loopback server + client pair around a
// sink backend and measures one frame per op through the wire protocol.
func benchIngestRoundTrip() (testing.BenchmarkResult, error) {
	const variates = 5
	e := aero.NewEngine(aero.EngineConfig{Shards: 1, Workers: 1, QueueDepth: 64, BatchSize: 8})
	defer e.Close()
	go func() {
		for range e.Alarms() {
		}
	}()
	sub, err := e.SubscribeBackend("bench", &sinkBackend{n: variates})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	srv, err := aero.NewIngestServer(aero.IngestServerConfig{
		Engine: e,
		Lookup: func(tenant string) (*aero.Subscription, error) { return sub, nil },
	})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer l.Close()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() { srv.Close(); <-serveDone }()

	c, err := aero.DialIngest(aero.IngestClientConfig{
		Addr: l.Addr().String(), Tenant: "bench", Variates: variates, Window: 256,
	})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer c.Close()
	frame := aero.Frame{Magnitudes: make([]float64, variates)}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frame.Time = float64(i)
			if err := c.Send(frame); err != nil {
				benchErr = err
				b.Skip(err)
			}
		}
		if err := c.Flush(); err != nil {
			benchErr = err
			b.Skip(err)
		}
		b.ReportMetric(float64(aero.IngestDataWireSize(variates)), "wire-bytes")
	})
	return res, benchErr
}

// openBenchBackend opens one serving backend, optionally wrapped in a
// DSPOT stage calibrated on the training split.
func openBenchBackend(spec aero.BackendSpec, artifact []byte, adaptive bool, d *dataset.Dataset) (aero.StreamBackend, error) {
	if adaptive {
		return aero.OpenAdaptiveBackend(spec, artifact, aero.DefaultDSPOTConfig(), d.Train)
	}
	return spec.Open(artifact)
}

// benchBackendPush warms the backend past every adapter's window and
// measures one steady-state Push.
func benchBackendPush(det aero.StreamBackend, d *dataset.Dataset) (testing.BenchmarkResult, error) {
	frame := aero.Frame{Magnitudes: make([]float64, d.Test.N())}
	t := 0
	var pushErr error
	push := func() error {
		idx := t % d.Test.Len()
		frame.Time = float64(t)
		for v := 0; v < d.Test.N(); v++ {
			frame.Magnitudes[v] = d.Test.Data[v][idx]
		}
		_, err := det.Push(frame)
		t++
		return err
	}
	for i := 0; i < 2*128; i++ { // past the largest adapter window
		if err := push(); err != nil {
			return testing.BenchmarkResult{}, err
		}
	}
	p50, p99, err := latencyPercentiles(push, 512)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := push(); err != nil {
				pushErr = err
				b.Skip(err)
			}
		}
		b.ReportMetric(p50, "p50_ns")
		b.ReportMetric(p99, "p99_ns")
	})
	return res, pushErr
}

// latencyPercentiles times n warm pushes in a separate pre-pass — never
// inside a recorded testing.Benchmark loop, where the two clock reads per
// op would inflate the ns/op rows — and returns the per-push p50/p99 in
// nanoseconds (log-linear bucket midpoints, ≤6.25% relative error).
func latencyPercentiles(push func() error, n int) (p50, p99 float64, err error) {
	h := aero.NewMetricsHistogram()
	for i := 0; i < n; i++ {
		t0 := aero.MetricsNow()
		if err = push(); err != nil {
			return 0, 0, err
		}
		h.Record(aero.MetricsNow() - t0)
	}
	s := h.Snapshot()
	return float64(s.Quantile(0.5)), float64(s.Quantile(0.99)), nil
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1..table4, fig5..fig10, bench, all")
	scale := flag.String("scale", "small", "compute scale: small or paper")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 0, "seed offset for datasets and models")
	jsonPath := flag.String("json", "", "write machine-readable results (experiment times, benchmark numbers) to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file after the selected experiments finish")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	opts := experiments.Options{Workers: *workers, Seed: *seed}
	switch *scale {
	case "small":
		opts.Scale = experiments.ScaleSmall
	case "paper":
		opts.Scale = experiments.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small or paper)\n", *scale)
		os.Exit(2)
	}

	runners := map[string]func(){
		"table1": func() { experiments.RunTable1(os.Stdout, opts) },
		"table2": func() { experiments.RunTable2(os.Stdout, opts) },
		"table3": func() { experiments.RunTable3(os.Stdout, opts) },
		"table4": func() { experiments.RunTable4(os.Stdout, opts) },
		"fig5":   func() { experiments.RunFig5(os.Stdout, opts) },
		"fig6":   func() { experiments.RunFig6(os.Stdout, opts) },
		"fig7":   func() { experiments.RunFig7(os.Stdout, opts) },
		"fig8":   func() { experiments.RunFig8(os.Stdout, opts) },
		"fig9":   func() { experiments.RunFig9(os.Stdout, opts) },
		"fig10":  func() { experiments.RunFig10(os.Stdout, opts) },
	}
	order := []string{"table1", "table2", "table3", "table4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if name == "bench" {
				selected = append(selected, name)
				continue
			}
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (want %s, bench or all)\n", name, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	rep := report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, Scale: *scale}
	start := time.Now()
	for _, name := range selected {
		t0 := time.Now()
		if name == "bench" {
			results, err := runMicroBenchmarks(os.Stdout)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: %v\n", err)
				os.Exit(1)
			}
			rep.Benchmarks = results
		} else {
			runners[name]()
		}
		secs := time.Since(t0).Seconds()
		rep.Experiments = append(rep.Experiments, experimentResult{Name: name, Seconds: secs})
		fmt.Printf("[%s done in %.1fs]\n", name, secs)
	}
	fmt.Printf("\nall selected experiments done in %.1fs\n", time.Since(start).Seconds())

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
