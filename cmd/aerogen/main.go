// Command aerogen generates the benchmark datasets as CSV files.
//
// Usage:
//
//	aerogen -out data -dataset all
//	aerogen -out data -dataset SyntheticMiddle
//
// Each dataset produces six files: <name>.{train,test}.{data,labels,noise}.csv.
package main

import (
	"flag"
	"fmt"
	"os"

	"aero/internal/dataset"
)

func main() {
	out := flag.String("out", "data", "output directory")
	name := flag.String("dataset", "all", "dataset name or all")
	flag.Parse()

	gens := map[string]func() *dataset.Dataset{
		"SyntheticMiddle": func() *dataset.Dataset { return dataset.SyntheticMiddle().Generate() },
		"SyntheticHigh":   func() *dataset.Dataset { return dataset.SyntheticHigh().Generate() },
		"SyntheticLow":    func() *dataset.Dataset { return dataset.SyntheticLow().Generate() },
		"AstrosetMiddle":  func() *dataset.Dataset { return dataset.AstrosetMiddle().Generate() },
		"AstrosetHigh":    func() *dataset.Dataset { return dataset.AstrosetHigh().Generate() },
		"AstrosetLow":     func() *dataset.Dataset { return dataset.AstrosetLow().Generate() },
	}

	var names []string
	if *name == "all" {
		names = []string{"SyntheticMiddle", "SyntheticHigh", "SyntheticLow",
			"AstrosetMiddle", "AstrosetHigh", "AstrosetLow"}
	} else {
		if _, ok := gens[*name]; !ok {
			fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *name)
			os.Exit(2)
		}
		names = []string{*name}
	}

	for _, n := range names {
		d := gens[n]()
		if err := dataset.WriteDataset(*out, d); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", n, err)
			os.Exit(1)
		}
		st := dataset.ComputeStats(d)
		fmt.Printf("%s: %d variates, train %d, test %d, anomaly %.3f%%, noise %.3f%% -> %s/\n",
			n, st.Variates, st.TrainLen, st.TestLen, st.AnomalyPct, st.NoisePct, *out)
	}
}
