package aero_test

import (
	"hash/fnv"
	"math"
	"runtime"
	"testing"

	"aero"
)

// trainFingerprint fits the benchmark model with the given worker count
// and returns (epochs1, epochs2, threshold bits, FNV-1a hash of all test
// score bits) — a complete fingerprint of the training outcome.
func trainFingerprint(t *testing.T, workers int) (int, int, uint64, uint64) {
	t.Helper()
	d := benchDataset()
	cfg := benchConfig()
	cfg.Workers = workers
	m, err := aero.New(cfg, d.Train.N())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(d.Train); err != nil {
		t.Fatal(err)
	}
	scores, err := m.Scores(d.Test)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, row := range scores {
		for _, s := range row {
			bits := math.Float64bits(s)
			for i := 0; i < 8; i++ {
				buf[i] = byte(bits >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return m.Epochs1, m.Epochs2, math.Float64bits(m.Threshold()), h.Sum64()
}

// TestTrainingBitIdentityGolden pins the end-to-end training outcome to
// the fingerprint captured from the pre-refactor closure-tape + map-Adam
// implementation (sequential training, same seed): the op-record gradient
// tapes, fused Adam and restructured epoch loops must not change a single
// bit of the losses, threshold or scores. The golden bits were recorded on
// amd64; other architectures may contract floating-point expressions
// differently (FMA), so the comparison is gated.
func TestTrainingBitIdentityGolden(t *testing.T) {
	const (
		goldenEpochs1 = 3
		goldenEpochs2 = 3
		goldenThrBits = uint64(0x3fda8e3d75baa011)
		goldenScores  = uint64(0x530ada4bb79b4e18)
	)
	if testing.Short() {
		t.Skip("training fingerprint is not fast")
	}
	e1, e2, thr, scores := trainFingerprint(t, 1)
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden bits recorded on amd64, running on %s", runtime.GOARCH)
	}
	if e1 != goldenEpochs1 || e2 != goldenEpochs2 {
		t.Fatalf("epochs (%d, %d) != golden (%d, %d)", e1, e2, goldenEpochs1, goldenEpochs2)
	}
	if thr != goldenThrBits {
		t.Fatalf("threshold bits %#x != golden %#x", thr, goldenThrBits)
	}
	if scores != goldenScores {
		t.Fatalf("score hash %#x != golden %#x", scores, goldenScores)
	}
}
